"""Figure 5 — Throughput with increasing stream lag.

Three inputs with 20% disorder; lag is simulated by delaying one or two
streams' positions in the arrival interleave.  Paper shape: throughput
*improves* with lag because LMerge can directly drop the lagging streams'
elements (they arrive already frozen by the fast stream's punctuation),
and it improves more when two streams lag than when one does.

The deterministic mechanism behind the figure — the fraction of lagging
elements taking the cheap already-frozen drop path — is asserted exactly;
the wall-clock series is printed (medians over repeats) and asserted on
its endpoints only, since container timing is noisy.
"""

import statistics
import time

import pytest

from repro.lmerge.r3 import LMergeR3
from repro.streams.divergence import diverge

from conftest import disordered_workload, series_benchmark

#: Lag expressed as a fraction of the stream the laggard trails by.
LAG_LEVELS = [0.0, 0.05, 0.1, 0.2, 0.4]
REPEATS = 5


def lagged_arrivals(inputs, lag_fraction, lagging):
    """(element, stream_id) pairs with lagging streams offset in arrival
    position: stream i's element k arrives at k (+ lag when lagging)."""
    lag = int(len(inputs[0]) * lag_fraction)
    schedule = []
    for stream_id, stream in enumerate(inputs):
        offset = lag if stream_id in lagging else 0
        for position, element in enumerate(stream):
            schedule.append((position + offset, stream_id, position, element))
    schedule.sort(key=lambda item: (item[0], item[1], item[2]))
    return [(element, stream_id) for _, stream_id, _, element in schedule]


def build_inputs(count=4000):
    # Frequent punctuation and short lifetimes: keys freeze fast, so a
    # lagging stream's elements mostly arrive after their key is retired.
    base = disordered_workload(
        count=count,
        seed=23,
        disorder=0.2,
        stable_freq=0.01,
        blob=50,
        event_duration=40,
    )
    return [diverge(base, seed=i) for i in range(3)]


def run_once(arrivals, n_inputs):
    import gc

    gc.collect()
    merge = LMergeR3()
    for stream_id in range(n_inputs):
        merge.attach(stream_id)
    start = time.perf_counter()
    for element, stream_id in arrivals:
        merge.process(element, stream_id)
    elapsed = time.perf_counter() - start
    return len(arrivals) / elapsed, merge


def median_throughput(arrivals, n_inputs):
    run_once(arrivals, n_inputs)  # warm-up, untimed
    rates = []
    merge = None
    for _ in range(REPEATS):
        rate, merge = run_once(arrivals, n_inputs)
        rates.append(rate)
    return statistics.median(rates), merge


@series_benchmark
def test_fig5_throughput_vs_lag(report):
    inputs = build_inputs()
    report("Figure 5: LMR3+ throughput (elements/s) and cheap-drop share vs lag")
    report(
        f"{'lag':>6}{'thpt 1-lag':>14}{'drop% 1-lag':>13}"
        f"{'thpt 2-lag':>14}{'drop% 2-lag':>13}"
    )
    throughput = {1: [], 2: []}
    drops = {1: [], 2: []}
    for lag in LAG_LEVELS:
        row = f"{lag:>6.0%}"
        for laggards, key in (({1}, 1), ({1, 2}, 2)):
            arrivals = lagged_arrivals(inputs, lag, laggards)
            rate, merge = median_throughput(arrivals, len(inputs))
            share = merge.dropped_frozen / merge.stats.inserts_in
            throughput[key].append(rate)
            drops[key].append(share)
            row += f"{rate:>14,.0f}{share:>12.1%} "
        report(row)
    # Deterministic mechanism: lag pushes lagging elements onto the cheap
    # already-frozen path, more so with two laggards.
    assert drops[1][0] < 0.02
    assert drops[1][-1] > 0.15
    assert drops[2][-1] > drops[1][-1]
    for series in drops.values():
        assert series == sorted(series)
    # Wall-clock shape (endpoints only; medians, still noisy): dropping is
    # no slower, and at heavy lag it is faster.
    assert throughput[2][-1] > 0.95 * throughput[2][0]
    assert throughput[2][-1] > throughput[1][0] * 0.95


@series_benchmark
def test_fig5_lag_preserves_correctness():
    inputs = build_inputs(count=2000)
    arrivals = lagged_arrivals(inputs, 0.3, {1, 2})
    _, merge = run_once(arrivals, len(inputs))
    assert merge.output.tdb() == inputs[0].tdb()


@pytest.mark.parametrize("lag", [0.0, 0.4])
def test_fig5_benchmark(benchmark, lag):
    inputs = build_inputs(count=2000)
    arrivals = lagged_arrivals(inputs, lag, {1, 2})

    def run():
        merge = LMergeR3()
        for stream_id in range(len(inputs)):
            merge.attach(stream_id)
        for element, stream_id in arrivals:
            merge.process(element, stream_id)
        return merge.stats.elements_in

    assert benchmark(run) == sum(len(s) for s in inputs)
