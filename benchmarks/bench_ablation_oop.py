"""Ablation — out-of-order processing vs. order-enforcement upstream.

Section I's motivating observation (citing Li et al. [7]): "A CQ often
contains data-reducing operators, such as aggregation and sampling, and
memory needs are minimized if we can move stream elements through the
query to such operators without ordering them."

Two pipelines over the same disordered stream:

* **OOP** — the disordered stream goes straight into the windowed
  aggregate (which handles disorder natively via punctuation);
* **Order-first** — a Cleanse buffers and orders the stream before the
  same aggregate.

Both produce the same logical result; the order-first pipeline pays for
it in buffered state and application-time latency that grow with event
lifetimes, while the aggregate's own state is tiny either way.
"""

import pytest

from repro.engine.operator import CollectorSink
from repro.metrics.collector import AppTimeLatencyProbe
from repro.operators.aggregate import WindowedCount
from repro.operators.cleanse import Cleanse

from conftest import disordered_workload, fmt_bytes, series_benchmark

LIFETIMES = [200, 1000, 5000]


def run_pipeline(stream, order_first):
    count = WindowedCount(window=100)
    sink = CollectorSink()
    count.subscribe(sink)
    probe = AppTimeLatencyProbe()
    peak_memory = 0
    if order_first:
        cleanse = Cleanse()
        cleanse.subscribe(count)
        entry = cleanse
        stateful = (cleanse, count)
    else:
        entry = count
        stateful = (count,)
    out_cursor = 0
    for index, element in enumerate(stream):
        probe.observe_input(element)
        entry.receive(element, 0)
        while out_cursor < len(sink.stream):
            probe.observe_output(sink.stream[out_cursor])
            out_cursor += 1
        if index % 100 == 0:
            memory = sum(op.memory_bytes() for op in stateful)
            if memory > peak_memory:
                peak_memory = memory
    return {
        "output": sink.stream,
        "peak_memory": peak_memory,
        "latency": probe.mean,
    }


@series_benchmark
def test_oop_vs_order_first(report):
    report("Ablation: out-of-order aggregation vs. Cleanse-then-aggregate")
    report(
        f"{'lifetime':>9}{'OOP mem':>10}{'ordered mem':>13}"
        f"{'OOP latency':>13}{'ordered latency':>17}"
    )
    for lifetime in LIFETIMES:
        stream = disordered_workload(
            count=3000,
            seed=71,
            disorder=0.4,
            blob=100,
            event_duration=lifetime,
        )
        oop = run_pipeline(stream, order_first=False)
        ordered = run_pipeline(stream, order_first=True)
        assert oop["output"].tdb() == ordered["output"].tdb()
        report(
            f"{lifetime:>9}{fmt_bytes(oop['peak_memory']):>10}"
            f"{fmt_bytes(ordered['peak_memory']):>13}"
            f"{oop['latency']:>13.0f}{ordered['latency']:>17.0f}"
        )
        # The paper's point: ordering first costs memory and latency that
        # grow with lifetimes; native out-of-order processing does not.
        assert ordered["peak_memory"] > 5 * max(1, oop["peak_memory"])
        assert ordered["latency"] > oop["latency"]
    # OOP latency is bounded by the disorder horizon, not the lifetime.


@pytest.mark.parametrize("order_first", [False, True], ids=["oop", "ordered"])
def test_oop_benchmark(benchmark, order_first):
    stream = disordered_workload(
        count=2000, seed=71, disorder=0.4, blob=50, event_duration=1000
    )

    def run():
        return len(run_pipeline(stream, order_first)["output"])

    benchmark(run)
