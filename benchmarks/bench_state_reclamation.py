"""Bounded merge state (PR 8) — settled-run reclamation vs the seed.

Not a paper figure: the paper's evaluation (Section VI) runs workloads
whose events expire, so the seed index self-cleans once output Ve
freezes.  The HA deployments the paper targets (Section II) are not so
kind: point events with open lifetimes (``Ve = INFINITY``) and replicas
that trail each other keep every half-frozen node resident forever, and
— worse — every CTI re-walks the whole settled prefix, so the seed's
stable path degrades from O(window) to O(stream).

The workload here is that adversary: two replicas of an infinite-Ve
point stream, replica 1 trailing replica 0 by a fixed element window.
Three configurations per variant:

* ``seed``     — ``reclamation=None``, the pre-PR-8 behaviour;
* ``reclaim``  — CTI-driven settled-prefix pruning (bounded state);
* ``spill``    — pruning plus cold-run spill of output-agreed runs the
  trailing replica has not confirmed yet (bounded *resident* state even
  for the not-yet-settled tail).

Asserted shape: all three produce element-identical output; the
reclaimed resident index is O(lag window) while the seed's is O(stream);
reclamation is >= 1.1x seed throughput (the settled prefix is walked
once instead of once per stable).  Writes BENCH_PR8.json.
"""

import json
import os
import platform
import statistics
import time

import pytest

from repro.lmerge import ReclamationPolicy
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.temporal.elements import Insert, Stable
from repro.temporal.time import INFINITY

from conftest import series_benchmark

BENCH_PR8_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_PR8.json"
)

VARIANTS = {"LMR3+": LMergeR3, "LMR4": LMergeR4}


def policies():
    return {
        "seed": None,
        "reclaim": ReclamationPolicy(),
        # run_width x hot_runs must undershoot the lag window or nothing
        # is ever cold: 2 hot runs of 128 vs a 1000-element lag leaves a
        # ~750-element cold tail to evict.  store_dir stays None so every
        # merge gets a private self-cleaning spill directory — repeated
        # rounds must not append to each other's store logs.
        "spill": ReclamationPolicy(spill=True, run_width=128, hot_runs=2),
    }


def lagged_schedule(n, run, window):
    """The adversarial delivery order, materialized once so every
    configuration replays the identical element sequence."""
    schedule = []
    backlog = []
    for i in range(n):
        element = Insert(f"p{i}", float(i), INFINITY)
        schedule.append((element, 0))
        backlog.append(element)
        if i % run == run - 1:
            schedule.append((Stable(float(i)), 0))
        if len(backlog) > window:
            trailing = backlog.pop(0)
            schedule.append((trailing, 1))
            if trailing.vs % run == run - 1:
                schedule.append((Stable(trailing.vs), 1))
    return schedule


def drive(variant, policy, schedule, sample_every=500):
    """Replay *schedule* into a fresh merge, sampling resident index size."""
    output = []
    merge = variant(sink=output.append, reclamation=policy)
    merge.attach(0)
    merge.attach(1)
    peak_nodes = 0
    peak_bytes = 0
    processed = 0
    start = time.perf_counter()
    for element, stream_id in schedule:
        merge.process(element, stream_id)
        processed += 1
        if processed % sample_every == 0:
            nodes = merge.index_nodes
            if nodes > peak_nodes:
                peak_nodes = nodes
            size = merge.index_bytes
            if size > peak_bytes:
                peak_bytes = size
    elapsed = time.perf_counter() - start
    return {
        "elements": processed,
        "seconds": elapsed,
        "throughput": processed / elapsed if elapsed > 0 else float("inf"),
        "peak_index_nodes": max(peak_nodes, merge.index_nodes),
        "peak_index_bytes": max(peak_bytes, merge.index_bytes),
        "final_index_nodes": merge.index_nodes,
        "pruned_nodes": merge.pruned_nodes,
        "spilled_runs": merge.spilled_runs,
        "faulted_runs": merge.faulted_runs,
        "dropped_runs": merge.dropped_runs,
        "output": output,
    }


@series_benchmark
def test_state_reclamation_series(report):
    n, run, window = 12_000, 50, 1_000
    schedule = lagged_schedule(n, run, window)
    report("Bounded state: settled-run reclamation on the lagged-replica "
           f"workload (n={n}, stable every {run}, lag window {window})")
    report(f"{'variant':>9}{'mode':>9}{'kelem/s':>10}{'speedup':>9}"
           f"{'peak nodes':>12}{'pruned':>9}{'spill/fault':>13}")
    results = {
        "pr": 8,
        "title": "Bounded merge state: reclamation, pooling, spill",
        "environment": {
            "python": platform.python_version(),
            "cores_visible": os.cpu_count() or 1,
        },
        "workload": {
            "elements": n,
            "replicas": 2,
            "stable_every": run,
            "lag_window_elements": window,
            "event_lifetime": "infinite",
        },
        "variants": {},
    }
    for name, variant in VARIANTS.items():
        entries = {}
        outputs = {}
        for mode, policy in policies().items():
            samples = []
            for _ in range(3):
                stats = drive(variant, policy, schedule)
                samples.append(stats)
            best = max(samples, key=lambda s: s["throughput"])
            outputs[mode] = best["output"]
            entries[mode] = {
                "elements_per_sec": round(best["throughput"]),
                "peak_index_nodes": best["peak_index_nodes"],
                "final_index_nodes": best["final_index_nodes"],
                "peak_index_bytes": best["peak_index_bytes"],
                "pruned_nodes": best["pruned_nodes"],
                "spilled_runs": best["spilled_runs"],
                "faulted_runs": best["faulted_runs"],
                "dropped_runs": best["dropped_runs"],
            }
        seed_eps = entries["seed"]["elements_per_sec"]
        for mode, entry in entries.items():
            entry["speedup_vs_seed"] = round(
                entry["elements_per_sec"] / seed_eps, 2
            )
            report(f"{name:>9}{mode:>9}"
                   f"{entry['elements_per_sec'] / 1e3:>10.1f}"
                   f"{entry['speedup_vs_seed']:>9.2f}"
                   f"{entry['peak_index_nodes']:>12}"
                   f"{entry['pruned_nodes']:>9}"
                   f"{entry['spilled_runs']:>6}/"
                   f"{entry['faulted_runs']:<6}")

        # 1. Reclamation is a pure optimization on this workload: the
        #    merged output is element-identical in all three modes.
        assert list(outputs["reclaim"]) == list(outputs["seed"])
        assert list(outputs["spill"]) == list(outputs["seed"])
        entries["reclaim"]["outputs_equal_seed"] = True
        entries["spill"]["outputs_equal_seed"] = True
        # 2. Resident state: the seed retains every infinite-Ve node
        #    (O(stream)); reclamation holds O(lag window).
        assert entries["seed"]["peak_index_nodes"] > 0.8 * n
        assert entries["reclaim"]["peak_index_nodes"] < 2 * window
        assert entries["spill"]["peak_index_nodes"] < 2 * window
        # 3. The settled prefix is walked once, not once per CTI:
        #    >= 1.1x throughput (acceptance bar; actual is far higher).
        assert entries["reclaim"]["speedup_vs_seed"] >= 1.1, entries
        # 4. The spill path actually exercised the store on this shape.
        assert entries["spill"]["spilled_runs"] > 0
        assert entries["spill"]["faulted_runs"] > 0
        results["variants"][name] = entries

    with open(BENCH_PR8_PATH, "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    report(f"(wrote {os.path.normpath(BENCH_PR8_PATH)})")


@pytest.mark.parametrize("mode", ["seed", "reclaim", "spill"])
def test_state_smoke_benchmark(benchmark, mode):
    """CI smoke: the lagged workload per mode at a small n; any spill or
    pruning corruption fails loudly via the output-length check."""
    schedule = lagged_schedule(3_000, 50, 400)

    def run():
        policy = policies()[mode]
        stats = drive(LMergeR3, policy, schedule)
        assert len(stats["output"]) > 0
        return stats["elements"]

    assert benchmark.pedantic(run, rounds=3, iterations=1) == len(schedule)
