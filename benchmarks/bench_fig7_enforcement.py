"""Figure 7 — Enforcing stream properties (C+LMR1) vs general LMerge.

Workload: a 50% disordered stream through a speculative aggregate (the
fragment output carries a substantial share of adjust() elements —
the paper reports ~36%).  Competitors:

* **C+LMR1** — a Cleanse operator per input enforces order, then the
  cheap LMR1 merges (Section VI-D's enforcement strategy);
* **LMR3+** — the general algorithm applied directly;
* **LMR3-** — the naive general variant.

Paper shapes: LMR3+ memory is lowest and nearly flat in the input count
while C+LMR1 degrades linearly (≈7x at 10 inputs); LMR3+ throughput beats
C+LMR1 and the gap widens with more inputs; C+LMR1 latency is orders of
magnitude above LMR3+ (buffering until fully frozen vs milliseconds).
"""

import statistics
import time

import pytest

from repro.engine.operator import CallbackSink
from repro.lmerge.base import interleave
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r3_naive import LMergeR3Naive
from repro.metrics.collector import AppTimeLatencyProbe
from repro.operators.cleanse import Cleanse

from conftest import (
    series_benchmark,
    aggregate_fragment_output,
    disordered_workload,
    fmt_bytes,
    run_merge,
)

INPUT_COUNTS = [2, 4, 6, 8, 10]


def fragment_inputs(n, count=3000):
    base = disordered_workload(
        count=count, seed=31, disorder=0.5, blob=20, event_duration=2000
    )
    return [
        aggregate_fragment_output(
            base,
            replica_seed=i,
            group_bytes=1000,  # paper-weight payloads: sharing matters
            lifetime=8000,  # long-lived results: buffering matters
        )
        for i in range(n)
    ]


class CleansePlusLMR1:
    """The enforcement pipeline: one Cleanse per input ahead of LMR1."""

    algorithm = "C+LMR1"

    def __init__(self, n_inputs):
        self.merge = LMergeR1()
        self.cleanses = []
        for stream_id in range(n_inputs):
            self.merge.attach(stream_id)
            cleanse = Cleanse(name=f"cleanse[{stream_id}]")
            bridge = CallbackSink(
                lambda element, sid=stream_id: self.merge.process(element, sid)
            )
            cleanse.subscribe(bridge)
            self.cleanses.append(cleanse)

    def process(self, element, stream_id):
        self.cleanses[stream_id].receive(element, 0)

    def memory_bytes(self):
        return self.merge.memory_bytes() + sum(
            cleanse.memory_bytes() for cleanse in self.cleanses
        )

    @property
    def output(self):
        return self.merge.output


def drive(system, inputs, memory_every=None, latency_probe=None):
    peak = 0
    processed = 0
    start = time.perf_counter()
    out_cursor = 0
    for element, stream_id in interleave(list(inputs), "round_robin", 0):
        if latency_probe is not None and stream_id == 0:
            latency_probe.observe_input(element)
        system.process(element, stream_id)
        processed += 1
        if latency_probe is not None:
            output = system.output
            while out_cursor < len(output):
                latency_probe.observe_output(output[out_cursor])
                out_cursor += 1
        if memory_every and processed % memory_every == 0:
            peak = max(peak, system.memory_bytes())
    elapsed = time.perf_counter() - start
    return {
        "throughput": processed / elapsed,
        "peak_memory": max(peak, system.memory_bytes()),
    }


def build(name, n):
    if name == "C+LMR1":
        return CleansePlusLMR1(n)
    merge = (LMergeR3 if name == "LMR3+" else LMergeR3Naive)()
    for stream_id in range(n):
        merge.attach(stream_id)
    return merge


COMPETITORS = ["LMR3+", "LMR3-", "C+LMR1"]


@series_benchmark
def test_fig7_adjust_share_of_fragment(report):
    """The workload premise: the fragment output is adjust-heavy."""
    inputs = fragment_inputs(1)
    share = inputs[0].count_adjusts() / max(1, len(inputs[0]))
    report(f"Figure 7 workload: fragment adjust share = {share:.0%} "
           "(paper: ~36%)")
    assert share > 0.15


@series_benchmark
def test_fig7_memory_series(report):
    report("Figure 7 (left): peak memory vs #inputs")
    report(f"{'inputs':>8}" + "".join(f"{n:>12}" for n in COMPETITORS))
    peaks = {name: [] for name in COMPETITORS}
    for n in INPUT_COUNTS:
        inputs = fragment_inputs(n)
        row = f"{n:>8}"
        for name in COMPETITORS:
            system = build(name, n)
            stats = drive(system, inputs, memory_every=200)
            peaks[name].append(stats["peak_memory"])
            row += f"{fmt_bytes(stats['peak_memory']):>12}"
        report(row)
    # LMR3+ nearly flat; enforcement and the naive variant grow linearly.
    assert peaks["LMR3+"][-1] < 2 * peaks["LMR3+"][0]
    assert peaks["C+LMR1"][-1] > 3 * peaks["C+LMR1"][0]
    assert peaks["LMR3-"][-1] > 3 * peaks["LMR3-"][0]
    # ... and C+LMR1 is several times worse than LMR3+ at 10 inputs.
    assert peaks["C+LMR1"][-1] > 3 * peaks["LMR3+"][-1]


@series_benchmark
def test_fig7_throughput_series(report):
    report("Figure 7 (right): throughput (elements/s) vs #inputs")
    report(f"{'inputs':>8}" + "".join(f"{n:>12}" for n in COMPETITORS))
    rates = {name: [] for name in COMPETITORS}
    for n in INPUT_COUNTS:
        inputs = fragment_inputs(n)
        row = f"{n:>8}"
        for name in COMPETITORS:
            samples = []
            for _ in range(3):
                import gc

                gc.collect()
                samples.append(
                    drive(build(name, n), inputs)["throughput"]
                )
            rate = statistics.median(samples)
            rates[name].append(rate)
            row += f"{rate:>12,.0f}"
        report(row)
    # LMR3+ outperforms the enforcement strategy, and the relative
    # improvement increases with more inputs (paper's claim): assert a
    # clear win in the upper half of the sweep and on the sweep average.
    half = len(INPUT_COUNTS) // 2
    for index in range(half, len(INPUT_COUNTS)):
        assert rates["LMR3+"][index] > rates["C+LMR1"][index]
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(rates["LMR3+"]) > mean(rates["C+LMR1"])


@series_benchmark
def test_fig7_latency(report):
    """C+LMR1 buffers until events fully freeze; LMR3+ emits immediately.
    Application-time latency differs by orders of magnitude."""
    inputs = fragment_inputs(3)
    latencies = {}
    for name in ("LMR3+", "C+LMR1"):
        probe = AppTimeLatencyProbe()
        drive(build(name, 3), inputs, latency_probe=probe)
        latencies[name] = probe.mean
    report(
        f"Figure 7 latency (mean app-time units): "
        f"LMR3+ = {latencies['LMR3+']:.1f}, C+LMR1 = {latencies['C+LMR1']:.1f}"
    )
    assert latencies["C+LMR1"] > 10 * max(1.0, latencies["LMR3+"])


@series_benchmark
def test_fig7_all_competitors_equivalent():
    inputs = fragment_inputs(3, count=1500)
    outputs = {}
    for name in COMPETITORS:
        system = build(name, 3)
        drive(system, inputs)
        outputs[name] = system.output.tdb()
    assert outputs["LMR3+"] == outputs["LMR3-"] == inputs[0].tdb()
    # C+LMR1 sees cleansed (reordered, coalesced) inputs; its final TDB
    # must still match.
    assert outputs["C+LMR1"] == inputs[0].tdb()


@pytest.mark.parametrize("name", COMPETITORS)
def test_fig7_benchmark(benchmark, name):
    inputs = fragment_inputs(4, count=1500)

    def run():
        system = build(name, 4)
        drive(system, inputs)
        return True

    benchmark(run)
