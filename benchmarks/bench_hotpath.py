"""Batched hot-path execution — per-element vs batched ingestion.

Not a paper figure: this bench tracks the repo's own batched execution
mode (``LMergeBase.process_batch`` + the R0-R4 fast paths) against the
per-element baseline.  Elements/sec are recorded for every variant on its
natural workload; the headline claims are asserted:

* batched >= 1.5x per-element for LMR1 on in-order input;
* batched >= 1.5x per-element for LMR3+ on general (disordered) input;
* disabled observability (the NullTracer guard in ``process_batch``)
  costs under 5% vs a replica of the uninstrumented inner loop.

The per-variant pytest-benchmark entries keep the batched path in the
BENCH json trajectory so regressions show up run-to-run.
"""

import time

import pytest

from repro.engine.parallel import available_cores
from repro.lmerge.base import interleave_batches

from conftest import (
    ALL_VARIANTS,
    disordered_workload,
    ordered_workload,
    run_merge,
    run_merge_batched,
    series_benchmark,
)

N_INPUTS = 3
COUNT = 5000

#: Variants whose restrictions admit the in-order workload only.
ORDERED_ONLY = ("LMR0", "LMR1", "LMR2")


def _workload_for(name):
    if name in ORDERED_ONLY:
        return [ordered_workload(count=COUNT, blob=30)] * N_INPUTS
    return [disordered_workload(count=COUNT, blob=30)] * N_INPUTS


def _best_throughputs(variant_cls, streams, reps=3):
    """Best-of-*reps* elements/sec for the two ingestion modes."""
    per_element = 0.0
    batched = 0.0
    for _ in range(reps):
        per_element = max(
            per_element, run_merge(variant_cls(), streams)["throughput"]
        )
        batched = max(
            batched, run_merge_batched(variant_cls(), streams)["throughput"]
        )
    return per_element, batched


@series_benchmark
def test_hotpath_speedup_series(report):
    report(f"Batched hot path: elements/s, {N_INPUTS} inputs, "
           f"{COUNT} elements per stream")
    speedups = {}
    for name, cls in ALL_VARIANTS.items():
        streams = _workload_for(name)
        per_element, batched = _best_throughputs(cls, streams)
        speedups[name] = batched / per_element
        report(f"  {name:>6}: per-element {per_element:>12,.0f}"
               f"  batched {batched:>12,.0f}  ({speedups[name]:.2f}x)")
    # The tentpole claims: batching pays off where per-element overhead
    # dominates (R1's counter scan) and where the index pays double
    # descents per insert (R3's find+add vs find_or_add).
    assert speedups["LMR1"] >= 1.5
    assert speedups["LMR3+"] >= 1.5
    # Batching must never be a pessimization on any variant.
    assert all(speedup >= 1.0 for speedup in speedups.values())


def test_batched_output_equivalent():
    """The bench's two drivers agree element-for-element when stable
    coalescing is off (the property the speedup must not cost)."""
    for name, cls in ALL_VARIANTS.items():
        per = cls()
        out_per = per.merge(_workload_for(name), schedule="sequential")
        bat = cls()
        out_bat = bat.merge_batched(
            _workload_for(name), schedule="sequential", coalesce_stables=False
        )
        assert list(out_per) == list(out_bat), name
        assert per.stats == bat.stats, name


def _untraced_process_batch(merge, elements, stream_id):
    """The pre-instrumentation inner loop of ``process_batch``:
    run-grouping + type-keyed dispatch, no tracer guard."""
    state = merge._inputs[stream_id]
    dispatch = merge._batch_dispatch
    i = 0
    n = len(elements)
    while i < n:
        cls = elements[i].__class__
        j = i + 1
        while j < n and elements[j].__class__ is cls:
            j += 1
        dispatch[cls](elements[i:j], stream_id, state, False)
        i = j


@pytest.mark.skipif(
    available_cores() < 2,
    reason="timing budget needs an unloaded core; host has <2",
)
@series_benchmark
def test_nulltracer_overhead_series(report):
    """Disabled observability must cost <5% on the batched hot path."""
    report("NullTracer guard overhead vs uninstrumented inner loop")
    for name in ("LMR1", "LMR3+"):
        cls = ALL_VARIANTS[name]
        streams = _workload_for(name)
        chunks = list(interleave_batches(streams, "round_robin", 0, 64))

        def timed(use_replica):
            merge = cls()
            for stream_id in range(len(streams)):
                merge.attach(stream_id)
            start = time.perf_counter()
            if use_replica:
                for chunk, stream_id in chunks:
                    _untraced_process_batch(merge, chunk, stream_id)
            else:
                for chunk, stream_id in chunks:
                    merge.process_batch(chunk, stream_id)
            return time.perf_counter() - start

        shipped = min(timed(False) for _ in range(3))
        replica = min(timed(True) for _ in range(3))
        slowdown = shipped / replica
        report(f"  {name:>6}: shipped {shipped:.4f}s  "
               f"replica {replica:.4f}s  ({slowdown - 1:+.1%})")
        assert slowdown <= 1.05, (
            f"{name}: disabled tracing costs {slowdown - 1:.1%} (budget 5%)"
        )


@pytest.mark.parametrize("name", list(ALL_VARIANTS))
def test_hotpath_batched_benchmark(benchmark, name):
    """Per-variant batched throughput in the benchmark json trajectory."""
    streams = _workload_for(name)
    variant = ALL_VARIANTS[name]

    def run():
        merge = variant()
        return run_merge_batched(merge, streams)["elements"]

    assert benchmark(run) == N_INPUTS * len(streams[0])
