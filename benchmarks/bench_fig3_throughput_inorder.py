"""Figure 3 — Throughput of LMerge variants over in-order input streams.

Paper shape: the simpler the algorithm, the higher the throughput
(LMR0 >= LMR1 >= LMR2 >> LMR3+ > LMR3-); LMR3+ clearly beats LMR3- thanks
to the optimized shared data structure.
"""

import pytest

from conftest import ALL_VARIANTS, ordered_workload, run_merge, series_benchmark

N_INPUTS = 3


def throughput(variant_cls, stream, n_inputs=N_INPUTS):
    merge = variant_cls()
    return run_merge(merge, [stream] * n_inputs)["throughput"]


@series_benchmark
def test_fig3_throughput_series(report):
    stream = ordered_workload(count=4000)
    series = {
        name: throughput(cls, stream) for name, cls in ALL_VARIANTS.items()
    }
    report("Figure 3: merge throughput (elements/s), in-order streams, "
           f"{N_INPUTS} inputs")
    for name, value in series.items():
        report(f"  {name:>6}: {value:>12,.0f}")
    # Paper shape: simple beats general; in2t beats the naive structure.
    assert series["LMR0"] > series["LMR3+"]
    assert series["LMR1"] > series["LMR3+"]
    assert series["LMR2"] > series["LMR3+"]
    assert series["LMR3+"] > series["LMR3-"]


@pytest.mark.parametrize("name", list(ALL_VARIANTS))
def test_fig3_throughput_benchmark(benchmark, name):
    stream = ordered_workload(count=3000)
    variant = ALL_VARIANTS[name]

    def run():
        merge = variant()
        return run_merge(merge, [stream] * N_INPUTS)["elements"]

    assert benchmark(run) == N_INPUTS * len(stream)
