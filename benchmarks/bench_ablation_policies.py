"""Ablation — output-policy trade-offs (Section V-A, Table II at scale).

Not a paper figure, but the design-choice study DESIGN.md calls out: the
same R3 merge under the paper's policy spectrum, measuring chattiness
(adjusts emitted), deletions (cancels emitted — the risk the conservative
policy eliminates), and eagerness (how many elements are on the output by
the time the inputs are half done).
"""

import pytest

from repro.lmerge.policies import (
    CONSERVATIVE_POLICY,
    DEFAULT_POLICY,
    EAGER_POLICY,
    InsertPropagation,
    OutputPolicy,
)
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.base import interleave
from repro.streams.divergence import diverge
from repro.temporal.elements import Adjust

from conftest import disordered_workload, series_benchmark

POLICIES = {
    "default (first/lazy)": DEFAULT_POLICY,
    "eager adjusts": EAGER_POLICY,
    "half-frozen wait": CONSERVATIVE_POLICY,
    "quorum 2/3": OutputPolicy(
        insert=InsertPropagation.QUORUM, quorum_fraction=0.67
    ),
    "stable lag 500": OutputPolicy(stable_lag=500),
}


def build_inputs(n=3, count=4000):
    base = disordered_workload(
        count=count, seed=61, disorder=0.3, blob=20, event_duration=500
    )
    return [diverge(base, seed=i, speculate_fraction=0.4) for i in range(n)]


def run_policy(policy, inputs):
    merge = LMergeR3(policy=policy)
    for stream_id in range(len(inputs)):
        merge.attach(stream_id)
    total = sum(len(stream) for stream in inputs)
    halfway_emitted = None
    for index, (element, stream_id) in enumerate(
        interleave(list(inputs), "round_robin", 0)
    ):
        merge.process(element, stream_id)
        if halfway_emitted is None and index >= total // 2:
            halfway_emitted = merge.stats.inserts_out
    cancels = sum(
        1
        for element in merge.output
        if isinstance(element, Adjust) and element.is_cancel
    )
    return {
        "adjusts": merge.stats.adjusts_out,
        "cancels": cancels,
        "halfway": halfway_emitted,
        "merge": merge,
    }


@series_benchmark
def test_policy_ablation(report):
    inputs = build_inputs()
    expected = inputs[0].tdb()
    report("Policy ablation (3 inputs, 30% disorder, 40% speculation):")
    report(f"{'policy':>22}{'adjusts out':>13}{'cancels':>9}{'emitted@50%':>13}")
    results = {}
    for name, policy in POLICIES.items():
        stats = run_policy(policy, inputs)
        results[name] = stats
        assert stats["merge"].output.tdb() == expected, name
        report(
            f"{name:>22}{stats['adjusts']:>13,}{stats['cancels']:>9,}"
            f"{stats['halfway']:>13,}"
        )
    # Eager is the chattiest; half-frozen never cancels; the withholding
    # policies trade eagerness (fewer events emitted by the halfway mark).
    assert results["eager adjusts"]["adjusts"] >= results[
        "default (first/lazy)"
    ]["adjusts"]
    assert results["half-frozen wait"]["cancels"] == 0
    assert (
        results["half-frozen wait"]["halfway"]
        < results["default (first/lazy)"]["halfway"]
    )
    assert (
        results["quorum 2/3"]["halfway"]
        <= results["default (first/lazy)"]["halfway"]
    )
    # Lagging the stable point can only reduce corrective adjusts.
    assert (
        results["stable lag 500"]["adjusts"]
        <= results["default (first/lazy)"]["adjusts"]
    )


@pytest.mark.parametrize("name", list(POLICIES))
def test_policy_benchmark(benchmark, name):
    inputs = build_inputs(count=2000)

    def run():
        stats = run_policy(POLICIES[name], inputs)
        return stats["adjusts"]

    benchmark(run)
