"""Figure 2 — Memory of LMerge variants over in-order input streams.

Paper shape: LMR0/LMR1/LMR2 negligible and overlapping; LMR3+ somewhat
higher but nearly independent of the number of inputs (payload sharing);
LMR3- much higher and growing linearly with the number of inputs.
"""

import pytest

from repro.lmerge import ReclamationPolicy
from repro.lmerge.r3 import LMergeR3
from repro.streams.generator import GeneratorConfig, StreamGenerator

from conftest import ALL_VARIANTS, fmt_bytes, ordered_workload, run_merge, series_benchmark

INPUT_COUNTS = [2, 4, 6, 8, 10]
STREAM_LENGTHS = [1000, 2000, 4000, 8000]


def peak_memory(variant_cls, n_inputs, stream):
    merge = variant_cls()
    stats = run_merge(merge, [stream] * n_inputs, memory_every=200)
    return stats["peak_memory"]


@series_benchmark
def test_fig2_memory_series(report):
    # The paper's payloads are ~1KB; payload sharing is what keeps LMR3+
    # flat, so the payload must dominate the per-input entry overhead.
    stream = ordered_workload(count=4000, blob=1000)
    series = {}
    for name, cls in ALL_VARIANTS.items():
        series[name] = [peak_memory(cls, n, stream) for n in INPUT_COUNTS]
    report("Figure 2: peak merge memory vs #inputs (in-order streams)")
    report(f"{'inputs':>8}" + "".join(f"{name:>12}" for name in series))
    for index, n_inputs in enumerate(INPUT_COUNTS):
        row = f"{n_inputs:>8}"
        for name in series:
            row += f"{fmt_bytes(series[name][index]):>12}"
        report(row)
    # Paper shape assertions:
    # 1. The simple variants are tiny and flat.
    for name in ("LMR0", "LMR1", "LMR2"):
        assert max(series[name]) < 1_000_000
    # 2. LMR3+ is nearly independent of the input count (payload shared;
    #    only a small per-input Ve entry is added).
    assert series["LMR3+"][-1] < 1.6 * series["LMR3+"][0]
    # 3. LMR3- grows roughly linearly and dominates LMR3+.
    assert series["LMR3-"][-1] > 3 * series["LMR3-"][0]
    assert series["LMR3-"][-1] > 3 * series["LMR3+"][-1]



def long_lived_workload(count):
    """Figure 2's in-order shape with effectively unexpiring events: the
    seed index only self-cleans when output Ve freezes, so nothing is
    ever reclaimed and residency tracks the stream length."""
    config = GeneratorConfig(
        count=count,
        seed=0,
        disorder=0.0,
        min_gap=1,
        payload_blob_bytes=100,
        stable_freq=0.01,
        event_duration=1_000_000,
    )
    return StreamGenerator(config).generate()


@series_benchmark
def test_fig2_bounded_index_series(report):
    """PR 8 arm: resident index size vs stream length for long-lived
    events.

    The Figure 2 workload is kind to the seed — events expire after one
    duration, so the index self-cleans at the Ve-freeze horizon.  The HA
    deployments the merge targets are not: with open-ended lifetimes the
    seed retains every node forever (O(stream)), while CTI-driven
    settled-run reclamation prunes at the stable cadence and stays flat.
    """
    report("Figure 2 arm: LMR3+ peak resident index nodes vs stream "
           "length (long-lived events)")
    report(f"{'elements':>10}{'seed':>10}{'reclaimed':>11}")
    seed_peaks, reclaimed_peaks = [], []
    for count in STREAM_LENGTHS:
        stream = long_lived_workload(count)
        inputs = [stream, stream]
        seed = run_merge(LMergeR3(), inputs, memory_every=100)
        reclaimed = run_merge(
            LMergeR3(reclamation=ReclamationPolicy()),
            inputs,
            memory_every=100,
        )
        seed_peaks.append(seed["peak_index_nodes"])
        reclaimed_peaks.append(reclaimed["peak_index_nodes"])
        report(f"{count:>10}{seed_peaks[-1]:>10}{reclaimed_peaks[-1]:>11}")
    # The seed retains every long-lived node: residency is O(stream).
    assert seed_peaks[-1] > 4 * seed_peaks[0]
    # Reclamation is bounded by the stable cadence, not the stream
    # length: flat across an 8x length sweep and far below the seed.
    assert max(reclaimed_peaks) < 2 * min(reclaimed_peaks)
    assert max(reclaimed_peaks) * 3 < seed_peaks[-1]


@pytest.mark.parametrize("name", list(ALL_VARIANTS))
def test_fig2_memory_benchmark(benchmark, name):
    """Timed companion: the memory sweep's merge at 6 inputs."""
    stream = ordered_workload(count=2000)

    def run():
        merge = ALL_VARIANTS[name]()
        return run_merge(merge, [stream] * 6)["elements"]

    assert benchmark(run) == 6 * len(stream)
