"""Figure 2 — Memory of LMerge variants over in-order input streams.

Paper shape: LMR0/LMR1/LMR2 negligible and overlapping; LMR3+ somewhat
higher but nearly independent of the number of inputs (payload sharing);
LMR3- much higher and growing linearly with the number of inputs.
"""

import pytest

from conftest import ALL_VARIANTS, fmt_bytes, ordered_workload, run_merge, series_benchmark

INPUT_COUNTS = [2, 4, 6, 8, 10]


def peak_memory(variant_cls, n_inputs, stream):
    merge = variant_cls()
    stats = run_merge(merge, [stream] * n_inputs, memory_every=200)
    return stats["peak_memory"]


@series_benchmark
def test_fig2_memory_series(report):
    # The paper's payloads are ~1KB; payload sharing is what keeps LMR3+
    # flat, so the payload must dominate the per-input entry overhead.
    stream = ordered_workload(count=4000, blob=1000)
    series = {}
    for name, cls in ALL_VARIANTS.items():
        series[name] = [peak_memory(cls, n, stream) for n in INPUT_COUNTS]
    report("Figure 2: peak merge memory vs #inputs (in-order streams)")
    report(f"{'inputs':>8}" + "".join(f"{name:>12}" for name in series))
    for index, n_inputs in enumerate(INPUT_COUNTS):
        row = f"{n_inputs:>8}"
        for name in series:
            row += f"{fmt_bytes(series[name][index]):>12}"
        report(row)
    # Paper shape assertions:
    # 1. The simple variants are tiny and flat.
    for name in ("LMR0", "LMR1", "LMR2"):
        assert max(series[name]) < 1_000_000
    # 2. LMR3+ is nearly independent of the input count (payload shared;
    #    only a small per-input Ve entry is added).
    assert series["LMR3+"][-1] < 1.6 * series["LMR3+"][0]
    # 3. LMR3- grows roughly linearly and dominates LMR3+.
    assert series["LMR3-"][-1] > 3 * series["LMR3-"][0]
    assert series["LMR3-"][-1] > 3 * series["LMR3+"][-1]



@pytest.mark.parametrize("name", list(ALL_VARIANTS))
def test_fig2_memory_benchmark(benchmark, name):
    """Timed companion: the memory sweep's merge at 6 inputs."""
    stream = ordered_workload(count=2000)

    def run():
        merge = ALL_VARIANTS[name]()
        return run_merge(merge, [stream] * 6)["elements"]

    assert benchmark(run) == 6 * len(stream)
