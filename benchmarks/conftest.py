"""Shared workload builders and reporting for the evaluation benches.

Every file in this directory regenerates one table or figure of the
paper's Section VI.  Conventions:

* each bench prints the figure's series (rows of the sweep) through the
  ``report`` fixture, which bypasses pytest's capture so the output lands
  in ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``;
* the pytest-benchmark fixture times one representative configuration per
  competitor so relative throughput is also tracked run-to-run;
* absolute numbers differ from the paper (Python on this container vs C#
  on the authors' 8-core server); the *shapes* — who wins, by what
  factor, where crossovers fall — are asserted where the paper claims
  them and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import pytest

from repro.engine.operator import CollectorSink
from repro.lmerge.base import LMergeBase, interleave, interleave_batches
from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r3_naive import LMergeR3Naive
from repro.lmerge.r4 import LMergeR4
from repro.operators.aggregate import AggregateMode, GroupedCount
from repro.streams.divergence import diverge
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.stream import PhysicalStream

ALL_VARIANTS = {
    "LMR0": LMergeR0,
    "LMR1": LMergeR1,
    "LMR2": LMergeR2,
    "LMR3+": LMergeR3,
    "LMR3-": LMergeR3Naive,
    "LMR4": LMergeR4,
}

GENERAL_VARIANTS = {
    "LMR3+": LMergeR3,
    "LMR3-": LMergeR3Naive,
    "LMR4": LMergeR4,
}


def series_benchmark(test_fn):
    """Run a figure-series test once under the pytest-benchmark fixture.

    ``pytest benchmarks/ --benchmark-only`` skips tests that do not use
    the ``benchmark`` fixture; the figure sweeps are the deliverable, so
    this decorator wraps them in ``benchmark.pedantic(..., rounds=1)`` —
    they are timed once and their printed series land in the bench log.
    """
    import inspect

    original = inspect.signature(test_fn)
    parameters = list(original.parameters.values())
    if "benchmark" not in original.parameters:
        parameters = parameters + [
            inspect.Parameter("benchmark", inspect.Parameter.POSITIONAL_OR_KEYWORD)
        ]

    def wrapper(**kwargs):
        benchmark = kwargs.pop("benchmark")
        benchmark.pedantic(
            lambda: test_fn(**kwargs), rounds=1, iterations=1
        )

    wrapper.__name__ = test_fn.__name__
    wrapper.__doc__ = test_fn.__doc__
    wrapper.__signature__ = original.replace(parameters=parameters)
    return wrapper


@pytest.fixture
def report(capsys):
    """Print figure rows past pytest's output capture."""

    def _print(*parts) -> None:
        with capsys.disabled():
            print(*parts)

    _print("")  # start each bench's block on a fresh line
    return _print


def ordered_workload(
    count: int = 5000, seed: int = 0, blob: int = 100
) -> PhysicalStream:
    """In-order, insert-only, strictly increasing Vs: valid for every
    variant (the Figures 2/3 workload)."""
    config = GeneratorConfig(
        count=count,
        seed=seed,
        disorder=0.0,
        min_gap=1,
        payload_blob_bytes=blob,
        stable_freq=0.01,
        event_duration=1000,
    )
    return StreamGenerator(config).generate()


def disordered_workload(
    count: int = 5000,
    seed: int = 0,
    disorder: float = 0.2,
    stable_freq: float = 0.01,
    blob: int = 100,
    event_duration: int = 1000,
) -> PhysicalStream:
    config = GeneratorConfig(
        count=count,
        seed=seed,
        disorder=disorder,
        stable_freq=stable_freq,
        payload_blob_bytes=blob,
        event_duration=event_duration,
    )
    return StreamGenerator(config).generate()


def aggregate_fragment_output(
    base: PhysicalStream,
    replica_seed: int,
    window: int = 200,
    reorder: bool = True,
    group_bytes: int = 0,
    lifetime: Optional[int] = None,
) -> PhysicalStream:
    """One replica of the Figure 4/7 query fragment — the paper's recipe
    verbatim: "aggregate (count) followed by a lifetime modification".

    A divergent copy of the base stream feeds a *speculative* grouped
    aggregate, so revisions are triggered exactly by disordered stragglers
    (the paper reports ~36% adjusts at 50% disorder); an AlterLifetime
    stretches the result events to *lifetime* time units (long lifetimes
    are what make the enforcement strategy's buffering expensive).
    ``group_bytes`` pads the group identifier so result payloads carry the
    paper's ~1KB weight.
    """
    from repro.operators.alter_lifetime import AlterLifetime
    from repro.operators.source import StreamSource

    if group_bytes:
        def key_fn(payload):
            return f"group-{payload[0] % 40:04d}-".ljust(group_bytes, "x")
    else:
        def key_fn(payload):
            return payload[0] % 40

    source = StreamSource(diverge(base, seed=replica_seed, reorder=reorder))
    aggregate = GroupedCount(
        window=window, key_fn=key_fn, mode=AggregateMode.SPECULATIVE
    )
    sink = CollectorSink()
    source.subscribe(aggregate)
    if lifetime is not None:
        alter = AlterLifetime(duration=lifetime)
        aggregate.subscribe(alter)
        alter.subscribe(sink)
    else:
        aggregate.subscribe(sink)
    source.play()
    return sink.stream


def run_merge(
    merge: LMergeBase,
    inputs: Sequence[PhysicalStream],
    schedule: str = "round_robin",
    memory_every: Optional[int] = None,
) -> Dict[str, float]:
    """Drive a merge to completion; returns throughput-relevant stats."""
    import time

    streams = list(inputs)
    for stream_id in range(len(streams)):
        if not merge.is_attached(stream_id):
            merge.attach(stream_id)
    peak_memory = 0
    peak_nodes = 0
    processed = 0
    start = time.perf_counter()
    for element, stream_id in interleave(streams, schedule, 0):
        merge.process(element, stream_id)
        processed += 1
        if memory_every and processed % memory_every == 0:
            memory = merge.memory_bytes()
            if memory > peak_memory:
                peak_memory = memory
            nodes = getattr(merge, "index_nodes", 0)
            if nodes > peak_nodes:
                peak_nodes = nodes
    elapsed = time.perf_counter() - start
    if memory_every:
        peak_memory = max(peak_memory, merge.memory_bytes())
        peak_nodes = max(peak_nodes, getattr(merge, "index_nodes", 0))
    return {
        "elements": processed,
        "seconds": elapsed,
        "throughput": processed / elapsed if elapsed > 0 else float("inf"),
        "peak_memory": peak_memory,
        "peak_index_nodes": peak_nodes,
        "adjusts_out": merge.stats.adjusts_out,
        "elements_out": merge.stats.elements_out,
    }


def run_merge_batched(
    merge: LMergeBase,
    inputs: Sequence[PhysicalStream],
    schedule: str = "round_robin",
    batch_size: int = 64,
    coalesce_stables: bool = True,
) -> Dict[str, float]:
    """Batched counterpart of :func:`run_merge` (the bench_hotpath driver).

    Same total elements, same schedules, but delivered in *batch_size*
    slices through ``process_batch`` with stable-coalescing on — the
    throughput configuration of the batched hot path.
    """
    import time

    streams = list(inputs)
    for stream_id in range(len(streams)):
        if not merge.is_attached(stream_id):
            merge.attach(stream_id)
    chunks = list(interleave_batches(streams, schedule, 0, batch_size))
    processed = 0
    start = time.perf_counter()
    for chunk, stream_id in chunks:
        merge.process_batch(
            chunk, stream_id, coalesce_stables=coalesce_stables
        )
        processed += len(chunk)
    elapsed = time.perf_counter() - start
    return {
        "elements": processed,
        "seconds": elapsed,
        "throughput": processed / elapsed if elapsed > 0 else float("inf"),
        "adjusts_out": merge.stats.adjusts_out,
        "elements_out": merge.stats.elements_out,
    }


def run_merge_columnar(
    merge: LMergeBase,
    inputs: Sequence[PhysicalStream],
    schedule: str = "round_robin",
    batch_size: int = 64,
    coalesce_stables: bool = True,
) -> Dict[str, float]:
    """Columnar counterpart of :func:`run_merge_batched`.

    Identical interleaving and batch size, but each micro-batch is a
    :class:`~repro.engine.columnar.ColumnBatch` driven through
    ``process_columns`` — the vectorized column walk.  Batches are built
    outside the clock (mirroring the batched driver's pre-chunking): the
    figure isolates merge-side cost, as ``from_elements`` is charged to
    the producer in the exchange benches.
    """
    import time

    from repro.engine.columnar import ColumnBatch

    streams = list(inputs)
    for stream_id in range(len(streams)):
        if not merge.is_attached(stream_id):
            merge.attach(stream_id)
    chunks = [
        (ColumnBatch.from_elements(list(chunk)), stream_id)
        for chunk, stream_id in interleave_batches(
            streams, schedule, 0, batch_size
        )
    ]
    processed = 0
    start = time.perf_counter()
    for batch, stream_id in chunks:
        merge.process_columns(
            batch, stream_id, coalesce_stables=coalesce_stables
        )
        processed += len(batch)
    elapsed = time.perf_counter() - start
    return {
        "elements": processed,
        "seconds": elapsed,
        "throughput": processed / elapsed if elapsed > 0 else float("inf"),
        "adjusts_out": merge.stats.adjusts_out,
        "elements_out": merge.stats.elements_out,
    }


def run_merge_sharded(
    merge_cls,
    inputs: Sequence[PhysicalStream],
    num_shards: int,
    backend: str = "thread",
    schedule: str = "round_robin",
    batch_size: int = 64,
    coalesce_stables: bool = True,
    **merge_kwargs,
) -> Dict[str, float]:
    """Sharded counterpart of :func:`run_merge_batched`.

    Same interleaving and batch size, but the micro-batches flow through
    an N-shard partitioned plan (``HashPartition`` -> per-shard workers ->
    ``ShardUnion``).  The clock includes the final drain (``close``), so
    worker startup/teardown is charged to the run like any exchange cost.
    """
    import time

    from repro.lmerge.shard import ShardedLMerge

    plan = ShardedLMerge(
        merge_cls,
        num_shards,
        backend=backend,
        coalesce_stables=coalesce_stables,
        **merge_kwargs,
    )
    streams = list(inputs)
    for stream_id in range(len(streams)):
        plan.attach(stream_id)
    chunks = list(interleave_batches(streams, schedule, 0, batch_size))
    processed = 0
    start = time.perf_counter()
    for chunk, stream_id in chunks:
        plan.process_batch(chunk, stream_id)
        processed += len(chunk)
    stats = plan.close()
    elapsed = time.perf_counter() - start
    return {
        "elements": processed,
        "seconds": elapsed,
        "throughput": processed / elapsed if elapsed > 0 else float("inf"),
        "adjusts_out": stats.adjusts_out,
        "elements_out": stats.elements_out,
    }


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024:
            return f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}TB"
