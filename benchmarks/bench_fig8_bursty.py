"""Figure 8 — Handling bursty data.

Four streams at 5000 elements/s; burstiness is modelled by rare random
stalls (truncated-normal stall length of ~1000 element periods, i.e.
~200ms at 5000 el/s) on each stream's FIFO
channel — a stall queues everything behind it and produces the
compensating throughput spike the paper describes.  LMerge follows
whichever input is healthy at each instant.

Paper shape: each individual input's delivery timeline is bursty (long
zero-rate gaps, then spikes); the LMerge output timeline is dramatically
smoother.  We quantify smoothness as the coefficient of variation of the
per-second rate and additionally require the merge to have produced
steady output during the windows where individual inputs stalled.
"""


from repro.engine.simulation import (
    BurstyDelay,
    SimulatedChannel,
    Simulation,
    timed_schedule,
)
from repro.lmerge.r3 import LMergeR3
from repro.metrics.collector import ThroughputTimeline
from repro.streams.divergence import diverge

from conftest import disordered_workload, series_benchmark

N_STREAMS = 4
RATE = 5000.0


def run_bursty_simulation(count=20000, seed=41):
    base = disordered_workload(
        count=count, seed=seed, disorder=0.2, blob=8, event_duration=40
    )
    inputs = [diverge(base, seed=i) for i in range(N_STREAMS)]
    sim = Simulation()
    merge = LMergeR3()
    output_timeline = ThroughputTimeline(bucket=0.1)
    input_timelines = [ThroughputTimeline(bucket=0.1) for _ in inputs]

    def make_consumer(stream_id):
        def consume(element):
            input_timelines[stream_id].record(sim.now)
            before = merge.stats.inserts_out
            merge.process(element, stream_id)
            produced = merge.stats.inserts_out - before
            if produced:
                output_timeline.record(sim.now, produced)

        return consume

    for stream_id, stream in enumerate(inputs):
        merge.attach(stream_id)
        channel = SimulatedChannel(
            sim,
            make_consumer(stream_id),
            BurstyDelay(probability=0.0004, mean=0.2, std=0.05),
            seed=100 + stream_id,
        )
        channel.feed(timed_schedule(list(stream), rate=RATE))
    sim.run()
    return inputs, input_timelines, output_timeline, merge


@series_benchmark
def test_fig8_smoothing(report):
    inputs, input_timelines, output_timeline, merge = run_bursty_simulation()
    input_cvs = [t.coefficient_of_variation() for t in input_timelines]
    output_cv = output_timeline.coefficient_of_variation()
    report("Figure 8: per-100ms rate variability (coefficient of variation)")
    for stream_id, cv in enumerate(input_cvs):
        report(f"  input {stream_id}: CV = {cv:.2f}")
    report(f"  LMerge output: CV = {output_cv:.2f}")
    # Paper shape: every input is bursty; the merged output is smoother
    # than any input.
    assert min(input_cvs) > 0.3
    assert output_cv < min(input_cvs)
    assert output_cv < 0.5 * max(input_cvs)
    # Correctness is not traded away for smoothness.
    assert merge.output.tdb() == inputs[0].tdb()


@series_benchmark
def test_fig8_output_covers_input_stalls(report):
    """During any single input's stall the output keeps flowing."""
    _, input_timelines, output_timeline, _ = run_bursty_simulation(count=12000)
    output_rates = dict(output_timeline.series())
    covered = 0
    stalls = 0
    for timeline in input_timelines:
        for bucket, rate in timeline.series()[:-4]:
            if rate == 0:  # this input delivered nothing in the bucket
                stalls += 1
                if output_rates.get(bucket, 0) > 0:
                    covered += 1
    report(
        f"Figure 8: output stayed live in {covered}/{stalls} buckets where "
        "some input had stalled"
    )
    assert stalls > 0
    assert covered / stalls > 0.9


def test_fig8_benchmark(benchmark):
    def run():
        _, _, timeline, _ = run_bursty_simulation(count=6000)
        return timeline.total

    benchmark(run)
