"""Figure 9 — Masking network congestion.

Three streams at 5000 elements/s; each suffers a congestion window at a
different point in time (normally distributed per-element delays while
congested), and two of the windows overlap near the end — the paper's
"at around 18 seconds, two inputs are simultaneously congested".

Paper shape: each input's delivery rate collapses during its congestion
window and spikes afterwards; the LMerge output is essentially unaffected
throughout, *including* during the two-way overlap, because one input is
always healthy.
"""


from repro.engine.simulation import (
    CongestionWindows,
    SimulatedChannel,
    Simulation,
    timed_schedule,
)
from repro.lmerge.r3 import LMergeR3
from repro.metrics.collector import ThroughputTimeline
from repro.streams.divergence import diverge

from conftest import disordered_workload, series_benchmark

RATE = 5000.0
BUCKET = 0.1
#: Congestion windows per stream (send-time seconds).  Streams 1 and 2
#: overlap in [2.6, 3.0) — the paper's two-simultaneously-congested phase.
WINDOWS = [
    [(0.5, 1.0)],
    [(1.5, 2.0), (2.6, 3.0)],
    [(2.2, 3.0)],
]


def run_congestion_simulation(count=20000, seed=47):
    base = disordered_workload(
        count=count, seed=seed, disorder=0.2, blob=8, event_duration=40
    )
    inputs = [diverge(base, seed=i) for i in range(len(WINDOWS))]
    sim = Simulation()
    merge = LMergeR3()
    output_timeline = ThroughputTimeline(bucket=BUCKET)
    input_timelines = [ThroughputTimeline(bucket=BUCKET) for _ in inputs]

    def make_consumer(stream_id):
        def consume(element):
            input_timelines[stream_id].record(sim.now)
            before = merge.stats.inserts_out
            merge.process(element, stream_id)
            produced = merge.stats.inserts_out - before
            if produced:
                output_timeline.record(sim.now, produced)

        return consume

    for stream_id, stream in enumerate(inputs):
        merge.attach(stream_id)
        # Congestion throttles the link: each element takes ~2ms of
        # channel service inside the window (10x the nominal period), so
        # throughput collapses to ~10% and the backlog drains as a spike
        # when the window ends — the paper's described behaviour.
        channel = SimulatedChannel(
            sim,
            make_consumer(stream_id),
            service_model=CongestionWindows(
                windows=WINDOWS[stream_id], mean=0.002, std=0.0005
            ),
            seed=200 + stream_id,
        )
        channel.feed(timed_schedule(list(stream), rate=RATE))
    sim.run()
    return inputs, input_timelines, output_timeline, merge


def rate_in(timeline, start, end):
    rates = [
        rate for bucket, rate in timeline.series() if start <= bucket < end
    ]
    return sum(rates) / len(rates) if rates else 0.0


@series_benchmark
def test_fig9_output_unaffected_by_congestion(report):
    inputs, input_timelines, output_timeline, merge = run_congestion_simulation()
    report("Figure 9: mean rate (elements/s) inside each congestion window")
    healthy_rate = rate_in(output_timeline, 0.0, 0.5) / BUCKET
    for stream_id, windows in enumerate(WINDOWS):
        for start, end in windows:
            congested = rate_in(input_timelines[stream_id], start, end) / BUCKET
            output = rate_in(output_timeline, start, end) / BUCKET
            report(
                f"  window [{start},{end}) stream {stream_id}: "
                f"input {congested:,.0f}, output {output:,.0f}"
            )
            # The congested input's own delivery collapses...
            assert congested < 0.4 * RATE
            # ... while the merged output stays within 25% of nominal.
            assert output > 0.75 * RATE
    report(f"  healthy-phase output rate: {healthy_rate:,.0f}")
    assert merge.output.tdb() == inputs[0].tdb()


@series_benchmark
def test_fig9_two_way_overlap_masked(report):
    """The 2.6-3.0s phase: streams 1 AND 2 congested simultaneously."""
    _, input_timelines, output_timeline, _ = run_congestion_simulation()
    overlap = (2.6, 3.0)
    rate_1 = rate_in(input_timelines[1], *overlap) / BUCKET
    rate_2 = rate_in(input_timelines[2], *overlap) / BUCKET
    output = rate_in(output_timeline, *overlap) / BUCKET
    report(
        f"Figure 9 overlap [2.6,3.0): stream1 {rate_1:,.0f}, "
        f"stream2 {rate_2:,.0f}, output {output:,.0f}"
    )
    assert rate_1 < 0.4 * RATE and rate_2 < 0.4 * RATE
    assert output > 0.75 * RATE  # stream 0 carries the merge


@series_benchmark
def test_fig9_smoothness(report):
    _, input_timelines, output_timeline, _ = run_congestion_simulation()
    input_cvs = [t.coefficient_of_variation() for t in input_timelines]
    output_cv = output_timeline.coefficient_of_variation()
    report(
        "Figure 9: CVs — inputs "
        + ", ".join(f"{cv:.2f}" for cv in input_cvs)
        + f"; output {output_cv:.2f}"
    )
    assert output_cv < min(input_cvs)


def test_fig9_benchmark(benchmark):
    def run():
        _, _, timeline, _ = run_congestion_simulation(count=8000)
        return timeline.total

    benchmark(run)
