"""Plan catalog: one executable LMerge plan per restriction class.

Each entry in :data:`PLANS` is a zero-argument factory returning a fresh
:class:`MergePlan` — replica queries wired through
:class:`repro.analysis.checked.PropertyChecker` operators into the LMerge
the selector picks.  The catalog is the shared fixture of

* ``python -m repro.analysis check-plan`` (static soundness over every
  plan; ``--dynamic`` also executes each plan and confirms the inferred
  restriction against the live observation), and
* ``tests/test_example_plans.py`` (the static == dynamic acceptance
  gate).

The plans are engineered so the restriction the analyzer infers is
exactly the restriction the generated workload exhibits — including the
negative space (``grouped_r2`` really does present different same-Vs
orders across replicas; ``noninjective_r4`` really does duplicate keys).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.checked import MergeCheck
from repro.engine.query import Query, play_together
from repro.operators.aggregate import AggregateMode, GroupedCount, TopK
from repro.operators.select import MapPayload
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.properties import (
    Restriction,
    classify,
    required_properties,
)
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Insert, Stable


@dataclass
class MergePlan:
    """A wired, runnable, checkable merge plan."""

    name: str
    description: str
    #: Replica queries whose tails feed the LMerge (through checkers).
    replicas: List[Query]
    merge: object
    check: MergeCheck
    #: What the analyzer infers for the merge inputs.
    inferred: Restriction

    def run_checked(self) -> Restriction:
        """Execute all replicas through the property checkers into the
        merge; return the restriction the live streams exhibited."""
        play_together(self.replicas)
        return self.check.observed_restriction()

    def close(self) -> None:
        close = getattr(self.merge, "close", None)
        if callable(close):
            close()


def _build(
    name: str,
    description: str,
    queries: List[Query],
    force: Optional[Restriction] = None,
    **lmerge_kwargs,
) -> MergePlan:
    """Wire *queries* through per-input checkers into the selected merge.

    The checkers assert exactly the guarantees the selected variant
    relies on (``required_properties``), so a lying transfer function
    fails loudly at run time instead of corrupting the merge output.
    """
    properties = [query.properties() for query in queries]
    merged = properties[0]
    for item in properties[1:]:
        merged = merged.meet(item)
    inferred = classify(merged)
    selected = force if force is not None else inferred
    check = MergeCheck(
        required_properties(selected), len(queries), name=f"{name}.check"
    )
    checked = [
        query.then(check.checker(index))
        for index, query in enumerate(queries)
    ]
    merge = Query.merge_with(checked, force=force, **lmerge_kwargs)
    return MergePlan(
        name=name,
        description=description,
        replicas=checked,
        merge=merge,
        check=check,
        inferred=inferred,
    )


# ---------------------------------------------------------------------------
# Workload helpers
# ---------------------------------------------------------------------------


def _generated(
    count: int = 400,
    seed: int = 0,
    disorder: float = 0.0,
    min_gap: int = 0,
    stable_freq: float = 0.05,
) -> PhysicalStream:
    config = GeneratorConfig(
        count=count,
        seed=seed,
        disorder=disorder,
        min_gap=min_gap,
        stable_freq=stable_freq,
        event_duration=50,
        payload_blob_bytes=4,
    )
    return StreamGenerator(config).generate()


def _permuted_within_stables(
    stream: PhysicalStream, seed: int
) -> PhysicalStream:
    """A physically divergent, logically equivalent copy: shuffle each run
    of data elements between stables.

    Stables stay in place, and each ``stable(t)``'s promise (no later
    element below ``t``) survives any permutation of the elements after
    it, so the result is a valid stream with the same TDB — it differs
    only in arrival order, the divergence grouped aggregation turns into
    differing same-Vs output order (the R2 shape).
    """
    rng = random.Random(seed)
    out = []
    run = []
    for element in stream:
        if element.__class__ is Stable:
            rng.shuffle(run)
            out.extend(run)
            run = []
            out.append(element)
        else:
            run.append(element)
    rng.shuffle(run)
    out.extend(run)
    return PhysicalStream(out, name=f"{stream.name}~perm{seed}")


def _handmade_disordered() -> PhysicalStream:
    """A tiny disordered stream whose payloads collide under a
    non-injective projection (two live events at Vs 5 share field 1)."""
    return PhysicalStream(
        [
            Insert(("a", 1), 5, 100),
            Insert(("b", 2), 3, 100),
            Insert(("c", 1), 5, 100),
            Insert(("d", 3), 9, 100),
            Stable(9),
            Insert(("e", 2), 12, 100),
            Stable(200),
        ],
        name="handmade",
    )


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------


def ordered_sources_r0() -> MergePlan:
    """Two strictly-increasing insert-only replicas merged directly —
    the paper's case 1 (R0)."""
    queries = [
        Query.from_stream(
            _generated(seed=7, disorder=0.0, min_gap=1), name=f"src{i}"
        )
        for i in range(2)
    ]
    return _build(
        "ordered_sources_r0",
        "ordered in-order sources merged directly",
        queries,
    )


def topk_r1() -> MergePlan:
    """Top-k over ordered inputs: duplicate window timestamps in
    deterministic rank order — the paper's case 4 (R1)."""
    queries = [
        Query.from_stream(
            _generated(seed=11, disorder=0.0, min_gap=1), name=f"src{i}"
        ).then(
            TopK(window=120, k=3, score_fn=lambda p: p[0], name=f"topk{i}")
        )
        for i in range(2)
    ]
    return _build(
        "topk_r1", "rank-ordered Top-k outputs over ordered inputs", queries
    )


def grouped_r2() -> MergePlan:
    """Conservative grouped counts over replicas that saw the same events
    in different physical order: same-Vs group order differs across
    replicas but stays keyed — the paper's case 5 (R2)."""
    base = _generated(seed=23, disorder=0.0, min_gap=0, stable_freq=0.08)
    inputs = [base, _permuted_within_stables(base, seed=5)]
    queries = [
        Query.from_stream(stream, name=f"src{i}").then(
            GroupedCount(
                window=80,
                key_fn=lambda p: p[0] % 8,
                mode=AggregateMode.CONSERVATIVE,
                name=f"grouped{i}",
            )
        )
        for i, stream in enumerate(inputs)
    ]
    return _build(
        "grouped_r2",
        "conservative grouped aggregation, replica-dependent group order",
        queries,
    )


def speculative_r3() -> MergePlan:
    """Aggressive grouped counts over a disordered source: revisions
    (adjusts) with the ``(Vs, payload)`` key intact — the R3 shape."""
    base = _generated(seed=31, disorder=0.3, stable_freq=0.06)
    inputs = [base, _permuted_within_stables(base, seed=9)]
    queries = [
        Query.from_stream(stream, name=f"src{i}").then(
            GroupedCount(
                window=100,
                key_fn=lambda p: p[0] % 6,
                mode=AggregateMode.AGGRESSIVE,
                name=f"grouped{i}",
            )
        )
        for i, stream in enumerate(inputs)
    ]
    return _build(
        "speculative_r3",
        "aggressive grouped aggregation: revisions, keyed",
        queries,
    )


def noninjective_r4() -> MergePlan:
    """A non-injective projection over a disordered source: payload
    collisions destroy the key, nothing is guaranteed — R4."""
    queries = [
        Query.from_stream(_handmade_disordered(), name=f"src{i}").then(
            MapPayload(
                lambda p: p[1], injective=False, name=f"collapse{i}"
            )
        )
        for i in range(2)
    ]
    return _build(
        "noninjective_r4",
        "non-injective projection: duplicate keys, no guarantees",
        queries,
    )


def partitioned_r3() -> MergePlan:
    """The R3 plan executed as a 2-shard partition-parallel merge (serial
    backend): sharding must not change the soundness verdict."""
    base = _generated(seed=43, disorder=0.25, stable_freq=0.06)
    inputs = [base, _permuted_within_stables(base, seed=13)]
    queries = [
        Query.from_stream(stream, name=f"src{i}").then(
            GroupedCount(
                window=100,
                key_fn=lambda p: p[0] % 5,
                mode=AggregateMode.AGGRESSIVE,
                name=f"grouped{i}",
            )
        )
        for i, stream in enumerate(inputs)
    ]
    return _build(
        "partitioned_r3",
        "aggressive grouped aggregation through a 2-shard merge",
        queries,
        shards=2,
        backend="serial",
    )


PLANS: Dict[str, Callable[[], MergePlan]] = {
    "ordered_sources_r0": ordered_sources_r0,
    "topk_r1": topk_r1,
    "grouped_r2": grouped_r2,
    "speculative_r3": speculative_r3,
    "noninjective_r4": noninjective_r4,
    "partitioned_r3": partitioned_r3,
}


if __name__ == "__main__":
    from repro.analysis.propflow import check_plan

    for plan_name, factory in PLANS.items():
        plan = factory()
        try:
            report = check_plan(*plan.replicas, plan=plan_name)
            observed = plan.run_checked()
            print(report.render())
            print(
                f"         {plan_name}: inferred {plan.inferred.name}, "
                f"observed {observed.name}"
            )
        finally:
            plan.close()
