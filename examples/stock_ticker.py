"""Stock-ticker revisions: merging feeds that amend earlier quotes.

Commercial ticker feeds issue revision tuples to amend previously issued
quotes (Section I-B.2).  Here two redundant feed handlers watch the same
exchange; both deliver every trading interval as an event (symbol, VWAP)
valid until the next interval, but they disagree transiently: each feed
speculates an interval is over, then revises when late trades arrive, and
the feeds punctuate at different cadences.

LMerge gives downstream consumers one clean, duplicate-free quote stream
regardless of which handler is ahead — the paper's footnote-2 workload
(real ticker data "worked with no problem") in synthetic form.

Run:  python examples/stock_ticker.py
"""

import random

from repro import INFINITY, PhysicalStream, Insert, Stable
from repro.engine.query import Query
from repro.lmerge.selector import create_lmerge
from repro.operators.aggregate import AggregateMode, GroupedCount
from repro.streams.divergence import diverge

SYMBOLS = ["AAPL", "MSFT", "GOOG", "AMZN", "TSLA"]
INTERVAL = 60  # one quote interval = 60 time units


def trade_stream(count=8000, seed=5) -> PhysicalStream:
    """Raw trades: (symbol, price-bucket) events, mildly disordered."""
    rng = random.Random(seed)
    prices = {symbol: 100.0 + 20 * i for i, symbol in enumerate(SYMBOLS)}
    elements = []
    clock = 0
    for trade_id in range(count):
        clock += rng.randint(0, 2)
        symbol = rng.choice(SYMBOLS)
        prices[symbol] = max(1.0, prices[symbol] + rng.gauss(0, 0.5))
        # Late-arriving trades: timestamp up to one interval behind.
        vs = max(0, clock - (rng.randint(1, INTERVAL) if rng.random() < 0.2 else 0))
        payload = (symbol, round(prices[symbol]), trade_id)
        elements.append(Insert(payload, vs, vs + 1))
        if rng.random() < 0.01:
            # Watermark: future trades may be backshifted by up to one
            # interval, so only promise stability behind that horizon.
            elements.append(Stable(max(0, clock - INTERVAL)))
    elements.append(Stable(INFINITY))
    return PhysicalStream(elements, name="trades")


def feed_handler(trades: PhysicalStream, seed: int) -> PhysicalStream:
    """One feed handler: per-symbol trade count per interval, published
    speculatively and revised when late trades land."""
    query = Query.from_stream(diverge(trades, seed=seed)).then(
        GroupedCount(
            window=INTERVAL,
            key_fn=lambda payload: payload[0],
            mode=AggregateMode.SPECULATIVE,
        )
    )
    return query.run()


def main() -> None:
    trades = trade_stream()
    print(f"raw trades: {trades.count_inserts():,} "
          f"({trades.count_adjusts()} revisions at source)")

    feed_a = feed_handler(trades, seed=1)
    feed_b = feed_handler(trades, seed=2)
    for name, feed in (("A", feed_a), ("B", feed_b)):
        print(f"feed {name}: {len(feed):,} elements, "
              f"{feed.count_adjusts()} amendments")

    # Compile-time selection: feed outputs are keyed but revised and
    # disordered -> the R3 algorithm.
    properties = Query.from_stream(trades).then(
        GroupedCount(INTERVAL, key_fn=lambda p: p[0],
                     mode=AggregateMode.SPECULATIVE)
    ).properties()
    merge = create_lmerge(properties)
    print(f"selected algorithm: {merge.algorithm}")

    consolidated = merge.merge([feed_a, feed_b], schedule="random", seed=3)
    assert consolidated.tdb() == feed_a.tdb() == feed_b.tdb()
    print(f"consolidated tape: {len(consolidated):,} elements, "
          f"{merge.stats.adjusts_out} amendments survive "
          f"(of {merge.stats.adjusts_in} received)")

    tape = sorted(consolidated.tdb(), key=lambda e: (e.vs, str(e.payload)))
    print("first intervals on the consolidated tape:")
    for event in tape[:6]:
        symbol, trades_in_interval = event.payload
        print(f"  [{event.vs:>4}, {event.ve:>4}) {symbol}: "
              f"{trades_in_interval} trades")


if __name__ == "__main__":
    main()
