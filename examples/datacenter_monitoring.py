"""The paper's motivating scenario: monitoring OS processes in a
data center, with high availability through LMerge.

Each machine reports process executions as events whose lifetime is the
process lifetime: the source emits an insert when the process starts
(end-time unknown, Ve = +inf) and later adjusts the event with the actual
end time — or cancels it if the process aborted.  A continuous query
counts successful process starts per machine in tumbling windows.

For high availability, the query runs as three replicas on different
machines; their physically divergent outputs feed one LMerge at the
consumer.  We fail two replicas mid-run (one permanently, one recovering
with a gap) and show the consumer never notices.

Run:  python examples/datacenter_monitoring.py
"""

import random

from repro import INFINITY, PhysicalStream, Insert, Adjust, Stable
from repro.engine.query import Query
from repro.ha.replica import FailureEvent, RecoveryMode, ReplicatedDeployment
from repro.lmerge.r3 import LMergeR3
from repro.operators.aggregate import AggregateMode, GroupedCount
from repro.streams.divergence import diverge

N_MACHINES = 8
N_PROCESSES = 4000
WINDOW = 500


def process_event_stream(seed: int) -> PhysicalStream:
    """Process start/end telemetry as a speculative event stream."""
    rng = random.Random(seed)
    elements = []
    clock = 0
    for pid in range(N_PROCESSES):
        clock += rng.randint(0, 5)
        machine = rng.randrange(N_MACHINES)
        payload = (f"machine-{machine}", pid)
        # Start observed: end time unknown yet.
        elements.append(Insert(payload, clock))
        aborted = rng.random() < 0.05
        runtime = rng.randint(1, 400)
        if aborted:
            # Abort: cancel the event entirely.
            elements.append(Adjust(payload, clock, INFINITY, clock))
        else:
            # Completion: revise the end time.
            elements.append(Adjust(payload, clock, INFINITY, clock + runtime))
        if rng.random() < 0.02:
            elements.append(Stable(clock))
    elements.append(Stable(INFINITY))
    return PhysicalStream(elements, name=f"telemetry(seed={seed})")


def main() -> None:
    telemetry = process_event_stream(seed=11)
    print(f"telemetry: {telemetry.count_inserts()} process starts, "
          f"{telemetry.count_adjusts()} end-time revisions/aborts")

    # The continuous query: successful process count per machine per window.
    def run_query(stream: PhysicalStream) -> PhysicalStream:
        query = Query.from_stream(stream).then(
            GroupedCount(
                window=WINDOW,
                key_fn=lambda payload: payload[0],
                mode=AggregateMode.AGGRESSIVE,
            )
        )
        return query.run()

    # Three replicas see physically different presentations of the
    # telemetry (different network paths reorder it differently).
    replica_outputs = [
        run_query(diverge(telemetry, seed=i)) for i in range(3)
    ]
    restriction = Query.from_stream(telemetry).then(
        GroupedCount(WINDOW, key_fn=lambda p: p[0],
                     mode=AggregateMode.AGGRESSIVE)
    ).restriction()
    print(f"replica query output restriction: {restriction.name} "
          "(aggressive grouped aggregate)")

    # HA deployment: replica 1 dies for good at element 2000; replica 2
    # goes down at 5000 and comes back having lost its backlog.
    deployment = ReplicatedDeployment(
        LMergeR3(),
        replica_outputs,
        failures=[
            FailureEvent(replica=1, fail_after=2000),
            FailureEvent(
                replica=2, fail_after=5000, down_for=800,
                mode=RecoveryMode.GAP,
            ),
        ],
    )
    merged = deployment.run()
    print(f"failures injected: {deployment.detach_count} detaches, "
          f"{deployment.reattach_count} re-attaches")

    expected = replica_outputs[0].tdb()
    assert merged.tdb() == expected
    print(f"OK: merged per-machine counts intact across failures "
          f"({len(expected)} result events)")

    # Show a few final counts.
    final = sorted(expected, key=lambda e: (e.vs, str(e.payload)))[:5]
    for event in final:
        machine, count = event.payload
        print(f"  window [{event.vs}, {event.ve}): {machine} ran "
              f"{count} processes")


if __name__ == "__main__":
    main()
