"""Dynamic plan selection with fast-forward feedback (Section V-D).

Two equivalent plans filter a stream through a UDF; one is expensive on
low payload values, the other on high ones.  The workload alternates
low/high batches, so the optimal plan keeps flipping.  LMerge merges both
plans' outputs; with feedback signalling, the currently-slower plan is
told which history the output no longer needs and skips that work
entirely — the paper's ~5x "fast-forward" win (Figure 10).

Run:  python examples/plan_switching_feedback.py
"""

import random

from repro import INFINITY, Insert, PhysicalStream, Stable
from repro.engine.simulation import SimulatedPlan, Simulation, timed_schedule
from repro.lmerge.feedback import FeedbackSignal
from repro.lmerge.r3 import LMergeR3
from repro.operators.udf import ValueBandCost

THRESHOLD = 200
UDF0 = ValueBandCost(THRESHOLD, below_cost=0.0016, above_cost=0.0001)
UDF1 = ValueBandCost(THRESHOLD, below_cost=0.0001, above_cost=0.0016)


def alternating_workload(total=20_000, batches=10, seed=9):
    rng = random.Random(seed)
    elements = []
    vs = 0
    for batch in range(batches):
        low = batch % 2 == 0
        for _ in range(total // batches):
            value = (rng.randint(0, THRESHOLD - 1) if low
                     else rng.randint(THRESHOLD, 400))
            elements.append(Insert((value, vs), vs, vs + 50))
            vs += 1
        elements.append(Stable(vs))
    elements.append(Stable(INFINITY))
    return PhysicalStream(elements, name="alternating")


def run(stream, feedback: bool):
    sim = Simulation()
    merge = LMergeR3()
    merge.attach(0)
    merge.attach(1)
    plans = [
        SimulatedPlan(sim, lambda e, s=0: merge.process(e, s),
                      service_cost=UDF0.cost, name="plan-UDF0"),
        SimulatedPlan(sim, lambda e, s=1: merge.process(e, s),
                      service_cost=UDF1.cost, name="plan-UDF1"),
    ]
    if feedback:
        merge.add_feedback_listener(
            lambda stream_id, horizon: plans[stream_id].on_feedback(
                FeedbackSignal(horizon)
            )
        )
    for send_time, element in timed_schedule(list(stream), rate=1e9):
        for plan in plans:
            sim.schedule_at(send_time, lambda p=plan, e=element: p.submit(e))
    sim.run()
    completion = min(p.completion_time for p in plans)
    assert merge.output.tdb() == stream.tdb()
    return completion, plans


def main() -> None:
    stream = alternating_workload()
    plain_time, plain_plans = run(stream, feedback=False)
    feedback_time, feedback_plans = run(stream, feedback=True)
    print("plan switching over an alternating low/high workload "
          f"({len(stream):,} elements):")
    print(f"  LMerge, no feedback : {plain_time:7.2f} simulated s "
          f"(0 elements skipped)")
    skipped = sum(p.skipped for p in feedback_plans)
    print(f"  LMerge + feedback   : {feedback_time:7.2f} simulated s "
          f"({skipped:,} elements fast-forwarded)")
    print(f"  speed-up            : {plain_time / feedback_time:7.1f}x "
          "(paper reports ~5x)")
    for plan in feedback_plans:
        print(f"    {plan.name}: busy {plan.busy_time:.2f}s, "
              f"skipped {plan.skipped:,}")


if __name__ == "__main__":
    main()
