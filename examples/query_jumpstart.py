"""Query jumpstart and cutover in a cloud setting (Section II, apps 4-5).

A long-running query holds long-lived events in state; restarting it from
the live stream alone would take forever to warm up.  Instead:

1. checkpoint the running query's logical state at its stable point;
2. spin up a new instance seeded with the checkpoint (replayed as
   inserts) followed by the live tail — the *jumpstart*;
3. attach it to LMerge with the checkpoint time as its guarantee point;
4. once the output stable point passes the guarantee, *cut over*: detach
   the old instance; the consumer never notices.

Run:  python examples/query_jumpstart.py
"""

from repro import (
    GeneratorConfig,
    LMergeR3,
    StreamGenerator,
    checkpoint_of,
    diverge,
    replay_stream,
)
from repro.ha.cutover import cutover


def main() -> None:
    reference = StreamGenerator(
        GeneratorConfig(
            count=8_000,
            seed=21,
            disorder=0.2,
            stable_freq=0.05,
            payload_blob_bytes=16,
            event_duration=2_000,  # long-lived state worth seeding
        )
    ).generate()
    old_plan = diverge(reference, seed=1)
    new_plan = diverge(reference, seed=2)

    merge = LMergeR3()
    merge.attach("old")

    # The old instance has been running for a while.
    progress = int(len(old_plan) * 0.6)
    for element in old_plan[:progress]:
        merge.process(element, "old")
    as_of = merge.max_stable
    print(f"old instance drove the output to stable point {as_of}")

    # Checkpoint the logical state: only events still relevant at as_of.
    state = merge.output.tdb()
    checkpoint = checkpoint_of(state, as_of=as_of)
    print(f"checkpoint@{as_of}: {len(checkpoint)} live events "
          f"(of {len(state)} total in history)")

    # The new instance = checkpoint replay + the live tail it will see.
    # (In production the tail comes from the real-time feed; here we give
    # it the portion of its own plan's output past the checkpoint.)
    tail = [
        element
        for element in new_plan
        if getattr(element, "vs", getattr(element, "vc", None)) is None
        or getattr(element, "vs", getattr(element, "vc", 0)) >= as_of
    ]
    newcomer = replay_stream(checkpoint, tail)
    print(f"jumpstarted instance: {len(newcomer)} elements "
          f"({len(checkpoint)} seeded + {len(tail)} live)")

    # Cut the merge over from the old instance to the newcomer.
    old_tail = iter(old_plan[progress:])
    old_used, new_used = cutover(
        merge,
        old_id="old",
        old_tail=old_tail,
        new_id="new",
        new_stream=newcomer,
        guarantee_from=as_of,
    )
    print(f"cutover complete: old instance served {old_used} more "
          f"elements, then detached; newcomer drove {new_used}")

    assert not merge.is_attached("old")
    assert merge.is_joined("new")
    assert merge.output.tdb() == reference.tdb()
    print("OK: consumer saw one uninterrupted, correct logical stream")


if __name__ == "__main__":
    main()
