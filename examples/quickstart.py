"""Quickstart: merge physically divergent copies of one logical stream.

Generates a disordered workload, derives three physically different but
logically equivalent presentations (reordering, speculative revisions,
different punctuation cadences), merges them with LMerge, and checks the
output reconstitutes to the same temporal database.

Run:  python examples/quickstart.py
"""

from repro import (
    GeneratorConfig,
    LMergeR3,
    StreamGenerator,
    diverge,
)


def main() -> None:
    # 1. One logical stream: 10K elements, 20% disorder, 1% punctuation.
    config = GeneratorConfig(
        count=10_000,
        seed=42,
        disorder=0.20,
        stable_freq=0.01,
        payload_blob_bytes=32,
    )
    generator = StreamGenerator(config)
    reference = generator.generate()
    print(f"reference stream: {len(reference)} elements "
          f"({reference.count_inserts()} inserts, "
          f"{reference.count_stables()} stables, "
          f"{generator.stats.achieved_disorder:.0%} disordered)")

    # 2. Three physical presentations of the same logical stream — what
    #    three replicas of a query would actually deliver.
    inputs = [
        diverge(reference, seed=i, speculate_fraction=0.3,
                stable_keep_probability=0.7)
        for i in range(3)
    ]
    for stream in inputs:
        print(f"  {stream.name}: {len(stream)} elements, "
              f"{stream.count_adjusts()} revisions")

    # 3. Logical Merge: one clean output compatible with all inputs.
    merge = LMergeR3()
    output = merge.merge(inputs, schedule="random", seed=7)
    print(f"merged output: {len(output)} elements "
          f"({merge.stats.inserts_out} inserts, "
          f"{merge.stats.adjusts_out} adjusts, "
          f"{merge.stats.stables_out} stables)")
    print(f"merge state: {merge.memory_bytes():,} bytes; "
          f"duplicates absorbed: "
          f"{merge.stats.inserts_in - merge.stats.inserts_out}")

    # 4. The merged stream is logically identical to the reference.
    assert output.tdb() == reference.tdb()
    print("OK: merged TDB == reference TDB")


if __name__ == "__main__":
    main()
