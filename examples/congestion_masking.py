"""Fast availability: masking network congestion with LMerge.

Three copies of a stream travel over independent simulated links; each
link suffers a congestion period at a different time (and two overlap).
LMerge at the consumer follows whichever copy is healthy, so the merged
output rate barely moves while each individual link collapses to ~10%.

This is the Section VI-E / Figure 9 experiment as a runnable demo.

Run:  python examples/congestion_masking.py
"""

from repro import GeneratorConfig, StreamGenerator, diverge
from repro.engine.simulation import (
    CongestionWindows,
    SimulatedChannel,
    Simulation,
    timed_schedule,
)
from repro.lmerge.r3 import LMergeR3
from repro.metrics.collector import ThroughputTimeline

RATE = 5000.0  # elements per second per stream
CONGESTION = [
    [(0.5, 1.0)],
    [(1.5, 2.0), (2.6, 3.0)],
    [(2.2, 3.0)],
]


def sparkline(rates, peak):
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(len(blocks) - 1, int(rate / peak * (len(blocks) - 1)))]
        for rate in rates
    )


def main() -> None:
    reference = StreamGenerator(
        GeneratorConfig(count=20_000, seed=3, disorder=0.2,
                        payload_blob_bytes=8, event_duration=40)
    ).generate()
    inputs = [diverge(reference, seed=i) for i in range(3)]

    sim = Simulation()
    merge = LMergeR3()
    out_timeline = ThroughputTimeline(bucket=0.1)
    in_timelines = [ThroughputTimeline(bucket=0.1) for _ in inputs]

    def consumer(stream_id):
        def consume(element):
            in_timelines[stream_id].record(sim.now)
            before = merge.stats.inserts_out
            merge.process(element, stream_id)
            if merge.stats.inserts_out > before:
                out_timeline.record(
                    sim.now, merge.stats.inserts_out - before
                )

        return consume

    for stream_id, stream in enumerate(inputs):
        merge.attach(stream_id)
        channel = SimulatedChannel(
            sim,
            consumer(stream_id),
            service_model=CongestionWindows(
                windows=CONGESTION[stream_id], mean=0.002, std=0.0005
            ),
            seed=stream_id,
        )
        channel.feed(timed_schedule(list(stream), rate=RATE))
    sim.run()

    peak = max(max(t.rates(), default=1) for t in in_timelines + [out_timeline])
    print("delivery rate over time (each char = 100 ms):")
    for stream_id, timeline in enumerate(in_timelines):
        windows = ", ".join(f"[{a}s,{b}s)" for a, b in CONGESTION[stream_id])
        print(f"  link {stream_id} (congested {windows}):")
        print(f"    {sparkline(timeline.rates(), peak)}")
    print("  LMerge output:")
    print(f"    {sparkline(out_timeline.rates(), peak)}")
    print(f"rate variability (CV): inputs "
          + ", ".join(f"{t.coefficient_of_variation():.2f}"
                      for t in in_timelines)
          + f" -> output {out_timeline.coefficient_of_variation():.2f}")
    assert merge.output.tdb() == reference.tdb()
    print("OK: output logically identical to the source stream")


if __name__ == "__main__":
    main()
