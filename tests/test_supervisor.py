"""SupervisedRuntime: crash detection, restart-from-checkpoint, replay,
bounded restarts, and the ring/close satellites.

Process-spawning tests keep workloads small and supervisor timings
aggressive; every run still checks the real oracle (TDB equivalence
against a clean serial run).
"""

import multiprocessing
import time
from collections import Counter

import pytest

from repro.engine.parallel import ParallelRuntime, ShardError
from repro.engine.shm import CTRL, PeerDeadError, RingClosedError, ShmRing
from repro.lmerge.base import MergeStats
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.shard import shard
from repro.obs.registry import MetricRegistry
from repro.resilience.faults import FaultPlan
from repro.temporal.elements import Stable

from conftest import divergent_inputs, small_stream

FAST = {
    "heartbeat_interval": 0.02,
    "heartbeat_timeout": 0.75,
    "restart_backoff": 0.01,
    "restart_backoff_cap": 0.1,
    "checkpoint_every": 4,
}


def data_multiset(stream):
    return Counter(e for e in stream if not isinstance(e, Stable))


def run_pair(fault_plan, tmp_path, count=160, options=None, registry=None):
    """A clean serial run and a supervised faulty run over one workload."""
    reference = small_stream(count=count, seed=3, disorder=0.2, stable_freq=0.08)
    inputs = divergent_inputs(reference, n=2)
    baseline = shard(LMergeR3, 2, backend="serial")
    baseline_out = baseline.merge_batched(inputs, batch_size=16)
    plan = shard(
        LMergeR3,
        2,
        backend="process",
        supervised=True,
        durable_dir=str(tmp_path),
        fault_plan=fault_plan,
        registry=registry,
        supervisor_options={**FAST, **(options or {})},
    )
    supervised_out = plan.merge_batched(inputs, batch_size=16)
    return reference, baseline_out, supervised_out, plan.runtime


class TestKillRecovery:
    def test_kill_recovers_to_equivalent_output(self, tmp_path):
        faults = FaultPlan.random(11, 2, 8, kills=2)
        reference, baseline_out, out, runtime = run_pair(faults, tmp_path)
        assert out.tdb() == baseline_out.tdb() == reference.tdb()
        assert data_multiset(out) == data_multiset(baseline_out)
        assert sum(runtime.restarts) >= 1
        assert runtime.recoveries
        assert all(r.seconds > 0 for r in runtime.recoveries)

    def test_late_kill_resumes_from_checkpoint_not_scratch(self, tmp_path):
        # Kill well after the first CTI checkpoints have landed: the
        # respawned worker must restore a positive applied_seq and
        # replay only the tail.
        faults = FaultPlan(kills=frozenset({(0, 15)}))
        reference, baseline_out, out, runtime = run_pair(
            faults, tmp_path, count=200
        )
        assert out.tdb() == reference.tdb()
        assert data_multiset(out) == data_multiset(baseline_out)
        (recovery,) = [r for r in runtime.recoveries if r.shard == 0]
        assert recovery.resumed_seq > 0
        assert recovery.replayed_entries >= 1

    def test_checkpoint_acks_trim_journal(self, tmp_path):
        reference, baseline_out, out, runtime = run_pair(None, tmp_path)
        assert out.tdb() == reference.tdb()
        assert runtime.restarts == [0, 0]
        # The close() flush handshake checkpoints everything, so no
        # journal entries remain untrimmed.
        assert all(
            runtime.journal_depth(s) == 0 for s in range(runtime.num_shards)
        )

    def test_recovery_metrics_recorded(self, tmp_path):
        registry = MetricRegistry()
        faults = FaultPlan(kills=frozenset({(1, 6)}))
        reference, _, out, runtime = run_pair(
            faults, tmp_path, registry=registry
        )
        assert out.tdb() == reference.tdb()
        assert registry.counter("restarts_total", {"shard": 1}).value >= 1
        assert (
            registry.counter("replayed_elements_total", {"shard": 1}).value
            == sum(r.replayed_elements for r in runtime.recoveries)
        )
        assert registry.histogram("recovery_seconds").count >= 1
        assert (
            registry.gauge("state_store_bytes", {"store": "shard-0"}).value
            > 0
        )


class TestStallDetection:
    def test_stalled_worker_is_detected_and_replaced(self, tmp_path):
        faults = FaultPlan(stalls=frozenset({(0, 5)}))
        reference, baseline_out, out, runtime = run_pair(faults, tmp_path)
        assert out.tdb() == reference.tdb()
        assert data_multiset(out) == data_multiset(baseline_out)
        stall_recoveries = [r for r in runtime.recoveries if r.shard == 0]
        assert stall_recoveries
        assert any(
            "heartbeat" in r.reason for r in stall_recoveries
        )


class TestBoundedRestarts:
    def test_deterministic_failure_surfaces_shard_error(self, tmp_path):
        """A batch for an unattached stream fails identically on every
        replay; after max_restarts the supervisor gives up."""
        from repro.engine.parallel import merge_factory
        from repro.resilience.supervisor import SupervisedRuntime

        runtime = SupervisedRuntime(
            merge_factory(LMergeR3),
            1,
            durable_dir=str(tmp_path),
            max_restarts=2,
            **FAST,
        ).start()
        stream = small_stream(count=30, seed=1, disorder=0.0)
        runtime.submit(0, 99, list(stream)[:8])  # stream 99 never attached
        with pytest.raises(ShardError) as excinfo:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                runtime.poll()
                time.sleep(0.02)
            runtime.close()
        assert "max_restarts" in str(excinfo.value)
        assert runtime.restarts == [2]


class TestRingLiveness:
    def test_get_raises_when_producer_dead_and_ring_empty(self):
        ring = ShmRing(4096)
        try:
            ring.set_liveness(lambda: False)
            with pytest.raises(PeerDeadError):
                ring.get(timeout=5.0)
        finally:
            ring.liveness = None
            ring.destroy()

    def test_final_frame_served_before_peer_death_surfaces(self):
        ring = ShmRing(4096)
        try:
            ring.put_pickle(CTRL, "published-then-died")
            ring.set_liveness(lambda: False)
            kind, payload = ring.get(timeout=1.0)
            assert kind == CTRL
            with pytest.raises(PeerDeadError):
                ring.get(timeout=5.0)
        finally:
            ring.liveness = None
            ring.destroy()

    def test_put_raises_when_consumer_dead_and_ring_full(self):
        ring = ShmRing(4096)
        try:
            while ring.put(CTRL, bytes(512), timeout=0):
                pass
            ring.set_liveness(lambda: False)
            with pytest.raises(PeerDeadError):
                ring.put(CTRL, bytes(512), timeout=5.0)
        finally:
            ring.liveness = None
            ring.destroy()

    def test_peer_dead_is_a_ring_closed_error(self):
        # Workers catch RingClosedError on driver death; the subclass
        # relationship is what routes PeerDeadError into that exit.
        assert issubclass(PeerDeadError, RingClosedError)


class TestCloseEscalation:
    def test_hung_worker_is_terminated_and_recorded(self):
        runtime = ParallelRuntime(lambda sink: None, 1, backend="serial")
        runtime.close_join_timeout = 0.1
        runtime.registry = MetricRegistry()
        context = multiprocessing.get_context("fork")
        process = context.Process(target=time.sleep, args=(600,), daemon=True)
        process.start()
        runtime._processes = [process]
        stats = [MergeStats()]
        runtime._join_or_escalate(stats)
        assert not process.is_alive()
        assert stats[0].escalations == 1
        assert (
            runtime.registry.counter(
                "shard_close_escalations_total", {"shard": 0}
            ).value
            == 1
        )

    def test_prompt_exit_is_not_an_escalation(self):
        runtime = ParallelRuntime(lambda sink: None, 1, backend="serial")
        context = multiprocessing.get_context("fork")
        process = context.Process(target=int, daemon=True)
        process.start()
        process.join()
        runtime._processes = [process]
        stats = [MergeStats()]
        runtime._join_or_escalate(stats)
        assert stats[0].escalations == 0

    def test_escalations_fold_through_stats_merge(self):
        a = MergeStats(escalations=1)
        b = MergeStats(escalations=2)
        assert (a + b).escalations == 3
        assert MergeStats.from_state(a.to_state()) == a


class TestDriverRestartResume:
    def test_second_runtime_resumes_from_durable_dir(self, tmp_path):
        """Driver-restart seam: a new SupervisedRuntime over the same
        durable_dir picks each shard up from its snapshot instead of an
        empty merge."""
        from repro.engine.parallel import merge_factory
        from repro.resilience.supervisor import SupervisedRuntime

        reference = small_stream(count=120, seed=6, disorder=0.2)
        inputs = divergent_inputs(reference, n=2)
        baseline = shard(LMergeR3, 1, backend="serial")
        baseline_out = baseline.merge_batched(inputs, batch_size=16)

        factory = merge_factory(LMergeR3)
        first = SupervisedRuntime(
            factory, 1, durable_dir=str(tmp_path), **FAST
        ).start()
        first.broadcast_attach(0)
        first.broadcast_attach(1)
        chunks = []
        from repro.lmerge.base import interleave_batches

        feeds = list(interleave_batches(inputs, "round_robin", 0, 16))
        cut = len(feeds) // 2
        collected = []
        for chunk, stream_id in feeds[:cut]:
            first.submit(0, stream_id, chunk)
            collected.extend(b for _, b in first.poll())
        first.close()
        collected.extend(b for _, b in first.poll())

        second = SupervisedRuntime(
            factory, 1, durable_dir=str(tmp_path), **FAST
        ).start()
        for chunk, stream_id in feeds[cut:]:
            second.submit(0, stream_id, chunk)
            collected.extend(b for _, b in second.poll())
        second.close()
        collected.extend(b for _, b in second.poll())

        elements = [e for batch in collected for e in batch.to_elements()]
        assert data_multiset(elements) == data_multiset(baseline_out)
        del chunks
