"""Tests for repro.temporal.elements."""

import pytest

from repro.temporal.elements import (
    Adjust,
    Close,
    Insert,
    Open,
    Stable,
    element_sort_key,
)
from repro.temporal.time import INFINITY


class TestInsert:
    def test_basic(self):
        element = Insert("A", 5, 10)
        assert element.key == (5, "A")
        assert element.to_event().ve == 10

    def test_default_infinite_end(self):
        assert Insert("A", 5).ve == INFINITY

    def test_rejects_empty_lifetime(self):
        with pytest.raises(ValueError):
            Insert("A", 5, 5, validate=True)

    def test_rejects_infinite_start(self):
        with pytest.raises(ValueError):
            Insert("A", INFINITY, validate=True)

    def test_validation_is_opt_in(self):
        # The hot path skips contract checks; trust boundaries pass
        # validate=True (see docs/ALGORITHMS.md, "Batched execution").
        assert Insert("A", 5, 5).ve == 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Insert("A", 5, 10).vs = 6


class TestAdjust:
    def test_basic(self):
        element = Adjust("A", 5, 10, 12)
        assert element.key == (5, "A")
        assert not element.is_cancel

    def test_cancel(self):
        assert Adjust("A", 5, 10, 5).is_cancel

    def test_can_extend_to_infinity(self):
        assert Adjust("A", 5, 10, INFINITY).ve == INFINITY

    def test_can_shrink_from_infinity(self):
        assert Adjust("A", 5, INFINITY, 10).v_old == INFINITY

    def test_rejects_vold_at_vs(self):
        # The adjusted event must have had a non-empty lifetime.
        with pytest.raises(ValueError):
            Adjust("A", 5, 5, 10, validate=True)

    def test_rejects_ve_before_vs(self):
        with pytest.raises(ValueError):
            Adjust("A", 5, 10, 4, validate=True)


class TestStable:
    def test_basic(self):
        assert Stable(10).vc == 10

    def test_infinity_allowed(self):
        assert Stable(INFINITY).vc == INFINITY

    def test_minus_infinity_rejected(self):
        with pytest.raises(ValueError):
            Stable(-INFINITY, validate=True)


class TestOpenClose:
    def test_open(self):
        assert Open("A", 3).vs == 3

    def test_open_rejects_infinite_start(self):
        with pytest.raises(ValueError):
            Open("A", INFINITY, validate=True)

    def test_close(self):
        assert Close("A", 9).ve == 9


class TestSortKey:
    def test_data_before_punctuation_at_same_instant(self):
        insert = Insert("A", 5, 10)
        adjust = Adjust("A", 5, 10, 12)
        stable = Stable(5)
        keys = sorted(
            [stable, adjust, insert], key=element_sort_key
        )
        assert keys == [insert, adjust, stable]

    def test_time_order_dominates(self):
        assert element_sort_key(Stable(4)) < element_sort_key(Insert("A", 5))

    def test_rejects_non_elements(self):
        with pytest.raises(TypeError):
            element_sort_key("not an element")
