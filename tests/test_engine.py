"""Tests for the query-graph layer: assembly, execution, inference."""

import pytest

from repro.engine.operator import CallbackSink, CollectorSink
from repro.engine.query import Query, infer_properties, play_together
from repro.lmerge.r2 import LMergeR2
from repro.operators.aggregate import GroupedCount, WindowedCount
from repro.operators.select import Filter, MapPayload
from repro.operators.source import StreamSource
from repro.operators.union import Union
from repro.streams.properties import Restriction, StreamProperties
from repro.temporal.elements import Insert, Stable
from repro.temporal.time import INFINITY

from conftest import divergent_inputs, small_stream


class TestQueryAssembly:
    def test_then_chains(self):
        stream = small_stream(count=100, seed=101)
        query = Query.from_stream(stream).then(Filter(lambda p: True))
        assert query.head is not query.tail
        assert query.tail.upstreams[0] is query.head

    def test_combine_multi_input(self):
        left = Query.from_stream(small_stream(count=50, seed=102))
        right = Query.from_stream(small_stream(count=50, seed=103))
        union = Union(num_inputs=2)
        combined = Query.combine([left, right], union)
        assert combined.tail is union
        assert len(union.upstreams) == 2

    def test_run_with_no_source_rejected(self):
        query = Query(Filter(lambda p: True))
        with pytest.raises(ValueError):
            query.run()


class TestQueryExecution:
    def test_run_collects_output(self):
        stream = small_stream(count=200, seed=104)
        output = Query.from_stream(stream).run()
        assert list(output) == list(stream)

    def test_run_leaves_graph_reusable(self):
        stream = small_stream(count=100, seed=105)
        query = Query.from_stream(stream).then(Filter(lambda p: True))
        query.run()
        # Re-running requires a fresh source cursor; build a new query on
        # the same operators is out of scope — but the graph must not
        # still push into the first run's sink.
        sink = CollectorSink()
        query.tail.subscribe(sink)
        assert len(sink.stream) == 0

    def test_multi_source_interleaved_run(self):
        left = small_stream(count=60, seed=106)
        right = small_stream(count=60, seed=107)
        union = Union(num_inputs=2)
        query = Query.combine(
            [Query.from_stream(left), Query.from_stream(right)], union
        )
        output = query.run(chunk=8)
        assert output.count_inserts() == left.count_inserts() + right.count_inserts()

    def test_sequential_run(self):
        left = small_stream(count=60, seed=106)
        right = small_stream(count=60, seed=107)
        union = Union(num_inputs=2)
        query = Query.combine(
            [Query.from_stream(left), Query.from_stream(right)], union
        )
        output = query.run(interleave=False)
        assert output.count_inserts() == left.count_inserts() + right.count_inserts()

    def test_play_together(self):
        reference = small_stream(count=120, seed=108)
        inputs = divergent_inputs(reference, n=3)
        replicas = [Query.from_stream(s) for s in inputs]
        merge = Query.merge_with(replicas)
        play_together(replicas, chunk=16)
        assert merge.output.tdb() == reference.tdb()


class TestPropertyInference:
    def test_source_properties_measured(self):
        stream = small_stream(count=100, seed=109, disorder=0.0)
        assert Query.from_stream(stream).properties().ordered

    def test_filter_preserves(self):
        stream = small_stream(count=100, seed=109, disorder=0.0)
        query = Query.from_stream(stream).then(Filter(lambda p: True))
        assert query.properties().ordered

    def test_lossy_map_weakens_key(self):
        stream = small_stream(count=100, seed=109, disorder=0.0)
        query = Query.from_stream(stream).then(MapPayload(lambda p: 0))
        assert not query.properties().key_vs_payload

    def test_aggregate_upgrades(self):
        stream = small_stream(count=100, seed=109, disorder=0.4)
        query = Query.from_stream(stream).then(WindowedCount(window=50))
        assert query.restriction() is Restriction.R0

    def test_infer_over_diamond(self):
        """Union of two branches of the same source."""
        stream = small_stream(count=100, seed=110, disorder=0.0)
        source = StreamSource(stream)
        left = Filter(lambda p: p[0] % 2 == 0)
        right = Filter(lambda p: p[0] % 2 == 1)
        union = Union(num_inputs=2)
        source.subscribe(left)
        source.subscribe(right)
        left.subscribe(union, port=0)
        right.subscribe(union, port=1)
        properties = infer_properties(union)
        assert not properties.ordered  # union discards ordering
        assert properties.insert_only  # both branches are insert-only


class TestMergeWith:
    def test_picks_cheapest_common_algorithm(self):
        stream = small_stream(count=100, seed=111, disorder=0.0)
        replicas = [
            Query.from_stream(stream).then(
                GroupedCount(window=50, key_fn=lambda p: p[0] % 3)
            )
            for _ in range(2)
        ]
        merge = Query.merge_with(replicas)
        assert isinstance(merge, LMergeR2)

    def test_merged_stream_ids_are_positional(self):
        stream = small_stream(count=60, seed=112)
        replicas = [Query.from_stream(stream) for _ in range(3)]
        merge = Query.merge_with(replicas)
        assert merge.input_ids == (0, 1, 2)

    def test_adapter_counts_elements(self):
        stream = small_stream(count=60, seed=113)
        replicas = [Query.from_stream(stream)]
        Query.merge_with(replicas)
        replicas[0].play()
        adapters = [
            op for op, _ in replicas[0].tail._subscribers
        ]
        assert adapters[0].elements_in == len(stream)


class TestSinks:
    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.receive(Insert("a", 1), 0)
        sink.receive(Stable(INFINITY), 0)
        assert len(seen) == 2
        assert sink.elements_in == 2

    def test_collector_sink_properties_passthrough(self):
        sink = CollectorSink()
        strong = StreamProperties.strongest()
        assert sink.derive_properties([strong]) == strong
        assert sink.derive_properties([]) == StreamProperties.unknown()
