"""Tests for the in2t and in3t merge indexes (Fig. 1)."""

import pytest

from repro.structures.in2t import In2T, OUTPUT
from repro.structures.in3t import In3T
from repro.structures.sizing import PayloadKey, payload_bytes
from repro.temporal.event import Event
from repro.temporal.time import INFINITY, MINUS_INFINITY


class TestPayloadBytes:
    def test_string(self):
        assert payload_bytes("abcd") == 4

    def test_int(self):
        assert payload_bytes(7) == 8

    def test_none(self):
        assert payload_bytes(None) == 0

    def test_bool(self):
        assert payload_bytes(True) == 1

    def test_paper_payload_about_1kb(self):
        payload = (123, 45, "x" * 1000)
        assert 1000 <= payload_bytes(payload) <= 1100

    def test_unknown_object_default(self):
        class Thing:
            pass

        assert payload_bytes(Thing()) == 16

    def test_object_with_declared_size(self):
        class Sized:
            payload_bytes = 512

        assert payload_bytes(Sized()) == 512


class TestPayloadKey:
    def test_natural_order(self):
        assert PayloadKey(1) < PayloadKey(2)
        assert not PayloadKey(2) < PayloadKey(1)

    def test_equality(self):
        assert PayloadKey("a") == PayloadKey("a")
        assert PayloadKey("a") != PayloadKey("b")

    def test_hashable(self):
        assert hash(PayloadKey((1, "x"))) == hash(PayloadKey((1, "x")))

    def test_unorderable_payloads_fall_back(self):
        # int vs str are not mutually orderable: repr order applies.
        left, right = PayloadKey(1), PayloadKey("a")
        assert (left < right) != (right < left)


class TestIn2T:
    def test_add_and_find(self):
        index = In2T()
        node = index.add(Event(5, "A", 10))
        assert index.find(5, "A") is node
        assert index.find(5, "B") is None
        assert index.find(6, "A") is None
        assert len(index) == 1

    def test_add_duplicate_raises(self):
        index = In2T()
        index.add(Event(5, "A", 10))
        with pytest.raises(KeyError):
            index.add(Event(5, "A", 12))

    def test_entries(self):
        index = In2T()
        node = index.add(Event(5, "A", 10))
        node.add_entry(0, 10)
        node.add_entry(OUTPUT, 10)
        assert node.get_entry(0) == 10
        assert node.get_entry(1) is None
        node.update_entry(0, 12)
        assert node.get_entry(0) == 12
        node.remove_entry(0)
        assert node.get_entry(0) is None
        assert node.get_entry(OUTPUT) == 10

    def test_half_frozen_bound_is_exclusive_on_vs(self):
        index = In2T()
        index.add(Event(5, "A", 10))
        index.add(Event(7, "B", 12))
        index.add(Event(7, "C", 12))
        assert [n.payload for n in index.half_frozen(5)] == []
        assert [n.payload for n in index.half_frozen(6)] == ["A"]
        assert [n.payload for n in index.half_frozen(7)] == ["A"]
        assert len(index.half_frozen(8)) == 3

    def test_delete(self):
        index = In2T()
        node = index.add(Event(5, "A", 10))
        index.delete(node)
        assert index.find(5, "A") is None
        with pytest.raises(KeyError):
            index.delete(node)

    def test_memory_shares_payload_across_streams(self):
        """One node holds the payload once however many streams report it."""
        blob = "x" * 1000
        one_stream = In2T()
        node = one_stream.add(Event(5, blob, 10))
        node.add_entry(0, 10)
        many_streams = In2T()
        node = many_streams.add(Event(5, blob, 10))
        for stream in range(10):
            node.add_entry(stream, 10)
        extra = many_streams.memory_bytes() - one_stream.memory_bytes()
        # Nine extra hash entries, not nine extra kilobyte payloads.
        assert extra < 9 * 100


class TestIn3T:
    def test_multiset_counts(self):
        index = In3T()
        node = index.find_or_add(Event(5, "A", 10))
        node.increment(0, 10)
        node.increment(0, 10)
        node.increment(0, 15)
        assert node.total_count(0) == 3
        assert node.count_of(0, 10) == 2
        assert node.ve_counts(0) == [(10, 2), (15, 1)]
        assert node.max_ve(0) == 15

    def test_decrement(self):
        index = In3T()
        node = index.find_or_add(Event(5, "A", 10))
        node.increment(0, 10, by=2)
        node.decrement(0, 10)
        assert node.count_of(0, 10) == 1
        node.decrement(0, 10)
        assert node.count_of(0, 10) == 0
        with pytest.raises(KeyError):
            node.decrement(0, 10)

    def test_decrement_unknown_ve_raises(self):
        index = In3T()
        node = index.find_or_add(Event(5, "A", 10))
        with pytest.raises(KeyError):
            node.decrement(0, 99)

    def test_streams_listing(self):
        index = In3T()
        node = index.find_or_add(Event(5, "A", 10))
        node.increment(0, 10)
        node.increment(2, 12)
        assert set(node.streams()) == {0, 2}
        node.decrement(2, 12)
        assert set(node.streams()) == {0}

    def test_max_ve_empty(self):
        index = In3T()
        node = index.find_or_add(Event(5, "A", 10))
        assert node.max_ve(0) == MINUS_INFINITY

    def test_find_or_add_reuses(self):
        index = In3T()
        first = index.find_or_add(Event(5, "A", 10))
        second = index.find_or_add(Event(5, "A", 99))
        assert first is second
        assert len(index) == 1

    def test_half_frozen_and_delete(self):
        index = In3T()
        node_a = index.find_or_add(Event(5, "A", 10))
        index.find_or_add(Event(8, "B", 12))
        assert [n.payload for n in index.half_frozen(6)] == ["A"]
        index.delete(node_a)
        assert index.find(5, "A") is None

    def test_infinite_ve_supported(self):
        index = In3T()
        node = index.find_or_add(Event(5, "A", INFINITY))
        node.increment(0, INFINITY)
        assert node.max_ve(0) == INFINITY

    def test_remove_stream(self):
        index = In3T()
        node = index.find_or_add(Event(5, "A", 10))
        node.increment(0, 10)
        node.remove_stream(0)
        assert node.total_count(0) == 0
        assert node.is_empty()

    def test_memory_grows_with_distinct_ves(self):
        index = In3T()
        node = index.find_or_add(Event(5, "A", 10))
        node.increment(0, 10)
        small = index.memory_bytes()
        for ve in range(11, 30):
            node.increment(0, ve)
        assert index.memory_bytes() > small
