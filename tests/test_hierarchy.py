"""Hierarchical LMerge: fragment-level resiliency (Section II)."""

import pytest

from repro.ha.hierarchy import FragmentChain, ReplicatedFragment
from repro.lmerge.r0 import LMergeR0
from repro.operators.aggregate import WindowedCount
from repro.operators.select import Filter

from conftest import small_stream


def filter_fragment(index: int):
    """Fragment 1: keep even-valued payloads."""
    return Filter(lambda payload: payload[0] % 2 == 0, name=f"filter[{index}]")


def count_fragment(index: int):
    """Fragment 2: windowed count (conservative)."""
    return WindowedCount(window=100, name=f"count[{index}]")


def reference_output(stream):
    """The unreplicated pipeline, for comparison."""
    from repro.engine.query import Query

    return (
        Query.from_stream(stream)
        .then(Filter(lambda payload: payload[0] % 2 == 0))
        .then(WindowedCount(window=100))
        .run()
    )


class TestReplicatedFragment:
    def test_merge_algorithm_from_fragment_properties(self):
        fragment = ReplicatedFragment(count_fragment, replicas=2)
        # Conservative WindowedCount output is R0: the cheapest merge.
        assert isinstance(fragment.merge, LMergeR0)

    def test_single_fragment_end_to_end(self):
        from repro.engine.operator import CollectorSink

        stream = small_stream(count=300, seed=91, disorder=0.0)
        fragment = ReplicatedFragment(count_fragment, replicas=3)
        sink = CollectorSink()
        fragment.output.subscribe(sink)
        for element in stream:
            fragment.broadcast(element)
        expected = reference_output_count_only(stream)
        assert sink.stream.tdb() == expected.tdb()

    def test_replica_failure_masked(self):
        from repro.engine.operator import CollectorSink

        stream = small_stream(count=300, seed=92, disorder=0.0)
        fragment = ReplicatedFragment(count_fragment, replicas=3)
        sink = CollectorSink()
        fragment.output.subscribe(sink)
        half = len(stream) // 2
        for element in stream[:half]:
            fragment.broadcast(element)
        fragment.fail_replica(1)
        for element in stream[half:]:
            fragment.broadcast(element)
        expected = reference_output_count_only(stream)
        assert sink.stream.tdb() == expected.tdb()

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedFragment(count_fragment, replicas=0)


def reference_output_count_only(stream):
    from repro.engine.query import Query

    return Query.from_stream(stream).then(WindowedCount(window=100)).run()


class TestFragmentChain:
    def test_two_fragment_chain(self):
        stream = small_stream(count=400, seed=93, disorder=0.0)
        chain = FragmentChain([filter_fragment, count_fragment], replicas=2)
        chain.feed(stream)
        assert chain.output.tdb() == reference_output(stream).tdb()

    def test_one_failure_per_fragment_tolerated(self):
        """The hierarchy claim: failing one replica of *every* fragment
        simultaneously still yields the correct end-to-end stream."""
        stream = small_stream(count=400, seed=94, disorder=0.0)
        chain = FragmentChain([filter_fragment, count_fragment], replicas=2)
        third = len(stream) // 3
        chain.feed(stream[:third])
        chain.fail(0, 0)  # one filter replica dies
        chain.fail(1, 1)  # one count replica dies
        chain.feed(stream[third:])
        assert chain.output.tdb() == reference_output(stream).tdb()

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FragmentChain([], replicas=2)

    def test_three_fragments(self):
        stream = small_stream(count=300, seed=95, disorder=0.0)

        def passthrough(index):
            return Filter(lambda payload: True, name=f"pass[{index}]")

        chain = FragmentChain(
            [passthrough, filter_fragment, count_fragment], replicas=3
        )
        chain.feed(stream)
        assert chain.output.tdb() == reference_output(stream).tdb()
