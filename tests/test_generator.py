"""Tests for the synthetic stream generator (Section VI-B knobs)."""

import pytest

from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.properties import Restriction, classify, measure_properties
from repro.temporal.elements import Insert, Stable
from repro.temporal.time import INFINITY


def generate(**kwargs):
    defaults = dict(count=1000, payload_blob_bytes=4, seed=1)
    defaults.update(kwargs)
    generator = StreamGenerator(GeneratorConfig(**defaults))
    return generator, generator.generate()


class TestConfigValidation:
    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            GeneratorConfig(count=0)

    def test_rejects_bad_stable_freq(self):
        with pytest.raises(ValueError):
            GeneratorConfig(stable_freq=1.5)

    def test_rejects_bad_disorder(self):
        with pytest.raises(ValueError):
            GeneratorConfig(disorder=-0.1)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            GeneratorConfig(event_duration=0)

    def test_rejects_min_gap_above_max_gap(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_gap=30, max_gap=20)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        _, first = generate(seed=9)
        _, second = generate(seed=9)
        assert first == second

    def test_different_seed_different_stream(self):
        _, first = generate(seed=9)
        _, second = generate(seed=10)
        assert first != second


class TestShape:
    def test_element_count(self):
        _, stream = generate(count=500)
        # final stable(inf) is appended on top of the requested count
        assert len(stream) == 501

    def test_final_stable_is_infinity(self):
        _, stream = generate()
        assert stream[-1] == Stable(INFINITY)

    def test_no_final_stable_when_disabled(self):
        _, stream = generate(final_stable=False)
        assert not (isinstance(stream[-1], Stable) and stream[-1].vc == INFINITY)

    def test_stream_is_valid(self):
        """Reconstitution in strict mode validates the element contract."""
        _, stream = generate(disorder=0.5, stable_freq=0.1)
        stream.tdb()  # raises on violation

    def test_event_duration(self):
        _, stream = generate(event_duration=77)
        inserts = [e for e in stream if isinstance(e, Insert)]
        assert all(e.ve - e.vs == 77 for e in inserts)

    def test_payload_fields(self):
        _, stream = generate(payload_blob_bytes=16, value_range=(0, 10))
        inserts = [e for e in stream if isinstance(e, Insert)]
        values = {e.payload[0] for e in inserts}
        assert values <= set(range(11))
        sequences = [e.payload[1] for e in inserts]
        assert sequences == list(range(len(inserts)))  # unique key component
        assert all(len(e.payload[2]) == 16 for e in inserts)

    def test_key_property_holds(self):
        _, stream = generate(disorder=0.4)
        assert stream.tdb().key_is_unique()


class TestStableFreq:
    def test_zero_freq_no_midstream_stables(self):
        _, stream = generate(stable_freq=0.0)
        assert stream.count_stables() == 1  # only the final stable(inf)

    def test_higher_freq_more_stables(self):
        _, sparse = generate(stable_freq=0.01, seed=3)
        _, dense = generate(stable_freq=0.2, seed=3)
        assert dense.count_stables() > sparse.count_stables()

    def test_at_least_one_insert_between_stables(self):
        _, stream = generate(stable_freq=0.5)
        previous_was_stable = False
        # The final stable(inf) terminator is exempt: it may follow a
        # generated stable directly.
        for element in stream[: len(stream) - 1]:
            if isinstance(element, Stable):
                assert not previous_was_stable
                previous_was_stable = True
            else:
                previous_was_stable = False


class TestDisorder:
    def test_zero_disorder_is_ordered(self):
        _, stream = generate(disorder=0.0)
        assert measure_properties(stream).ordered

    def test_requested_disorder_roughly_achieved(self):
        generator, stream = generate(disorder=0.3, count=4000)
        achieved = generator.stats.achieved_disorder
        assert 0.2 <= achieved <= 0.35
        assert not measure_properties(stream).ordered

    def test_disorder_best_effort_under_heavy_stables(self):
        """The paper's caveat: stables cap achievable disorder."""
        generator, _ = generate(disorder=0.9, stable_freq=0.45, count=4000)
        assert generator.stats.achieved_disorder < 0.9

    def test_min_gap_forces_strictly_increasing(self):
        _, stream = generate(disorder=0.0, min_gap=1)
        assert classify(measure_properties(stream)) is Restriction.R0


class TestGenerateOrdered:
    def test_ordered_helper_overrides_disorder(self):
        generator = StreamGenerator(
            GeneratorConfig(count=500, disorder=0.5, payload_blob_bytes=4)
        )
        stream = generator.generate_ordered()
        assert measure_properties(stream).ordered
        assert generator.config.disorder == 0.5  # restored
