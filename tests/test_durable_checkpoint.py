"""DurableCheckpointLog: repro.ha jumpstart checkpoints that survive
process death, with CTI-boundary pruning/compaction."""

import pytest

from repro.ha.checkpoint import checkpoint_of, replay_stream
from repro.resilience.durable import DurableCheckpointLog

from conftest import small_stream


def stable_points_of(stream):
    tdb = stream.tdb()
    return tdb, tdb.stable_point


def test_append_get_latest_across_reopen(tmp_path):
    stream = small_stream(count=200, seed=4, disorder=0.2, stable_freq=0.1)
    tdb, stable_point = stable_points_of(stream)
    # Checkpoint at a finite CTI so exact-match lookups are meaningful
    # (a fully drained stream stabilises to +inf).
    as_of = max(
        event.ve
        for event in tdb
        if event.ve <= stable_point and event.ve != float("inf")
    )
    checkpoint = checkpoint_of(tdb, as_of=as_of)

    log = DurableCheckpointLog(str(tmp_path))
    log.append(checkpoint)
    # kill -9: reopen without close.
    reopened = DurableCheckpointLog(str(tmp_path))
    recovered = reopened.latest()
    assert recovered is not None
    assert recovered.as_of == checkpoint.as_of
    assert recovered.events == checkpoint.events
    assert reopened.get(as_of).events == checkpoint.events
    assert reopened.get(as_of + 10**9) is None
    reopened.close()
    log.close()


def test_stable_points_ordered_and_prune(tmp_path):
    stream = small_stream(count=300, seed=9, disorder=0.1, stable_freq=0.1)
    tdb = stream.tdb()
    # Checkpoint at several CTIs by walking stable prefixes.
    points = sorted(
        {event.ve for event in tdb if event.ve <= tdb.stable_point}
    )[:4]
    assert len(points) >= 2
    with DurableCheckpointLog(str(tmp_path)) as log:
        for as_of in points:
            log.append(checkpoint_of(tdb, as_of=as_of))
        assert log.stable_points() == points
        before = log.total_bytes
        reclaimed = log.prune(keep=1)
        assert reclaimed >= 0
        assert log.total_bytes <= before
        assert log.stable_points() == [points[-1]]
        assert log.latest().as_of == points[-1]
        with pytest.raises(ValueError):
            log.prune(keep=0)
    with DurableCheckpointLog(str(tmp_path)) as reopened:
        assert reopened.stable_points() == [points[-1]]


def test_empty_log(tmp_path):
    with DurableCheckpointLog(str(tmp_path)) as log:
        assert log.latest() is None
        assert log.stable_points() == []


def test_replayed_checkpoint_reconstitutes_history(tmp_path):
    """A replica jumpstarted from the durable checkpoint presents a
    stream whose TDB at the checkpoint equals the original history at
    that point (the Section V-B joining contract)."""
    stream = small_stream(count=200, seed=11, disorder=0.2, stable_freq=0.1)
    tdb = stream.tdb()
    as_of = tdb.stable_point
    with DurableCheckpointLog(str(tmp_path)) as log:
        log.append(checkpoint_of(tdb, as_of=as_of))
    with DurableCheckpointLog(str(tmp_path)) as reopened:
        recovered = reopened.latest()
    replayed = replay_stream(recovered, live_tail=[])
    replay_tdb = replayed.tdb()
    expected = {
        (event.vs, event.payload, event.ve)
        for event in tdb
        if event.ve >= as_of
    }
    got = {(event.vs, event.payload, event.ve) for event in replay_tdb}
    assert got == expected
