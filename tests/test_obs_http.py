"""The stdlib /metrics + /health endpoint and the `repro top` renderer."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.obs.http import MetricsServer
from repro.obs.registry import MetricRegistry
from repro.obs.top import parse_metrics, render_table, top


@pytest.fixture()
def registry():
    reg = MetricRegistry()
    reg.counter(
        "events_total", {"shard": 0}, help="Events seen."
    ).inc(12)
    reg.gauge("shard_queue_depth", {"merge": "m", "shard": 0}).set(3)
    reg.histogram("lat").observe(0.5)
    return reg


@pytest.fixture()
def server(registry):
    with MetricsServer(registry, port=0) as srv:
        yield srv


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


class TestMetricsServer:
    def test_metrics_scrape(self, server):
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert 'events_total{shard="0"} 12' in body
        assert "# HELP events_total Events seen." in body
        assert "# TYPE events_total counter" in body

    def test_scrape_reflects_live_updates(self, registry, server):
        registry.counter("events_total", {"shard": 0}).inc(5)
        _, _, body = _get(server.url + "/metrics")
        assert 'events_total{shard="0"} 17' in body

    def test_health(self, server):
        status, headers, body = _get(server.url + "/health")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_ephemeral_port_resolves(self, registry):
        server = MetricsServer(registry, port=0)
        assert server.port == 0
        with server:
            assert server.port > 0
            assert str(server.port) in server.url

    def test_double_start_rejected(self, registry):
        with MetricsServer(registry, port=0) as server:
            with pytest.raises(RuntimeError):
                server.start()

    def test_stop_idempotent(self, registry):
        server = MetricsServer(registry, port=0).start()
        server.stop()
        server.stop()  # no error


class TestTopRenderer:
    def test_parse_metrics(self):
        samples = parse_metrics(
            "# HELP c help text\n"
            "# TYPE c counter\n"
            'c{shard="0",merge="m"} 5\n'
            "plain 1.5\n"
            "weird +Inf\n"
        )
        assert ("c", (("merge", "m"), ("shard", "0")), 5.0) in samples
        assert ("plain", (), 1.5) in samples
        assert ("weird", (), float("inf")) in samples

    def test_render_table_groups_by_shard(self):
        table = render_table(
            [
                ("shard_queue_depth", (("shard", "0"),), 4.0),
                ("shard_queue_depth", (("shard", "1"),), 7.0),
                ("lmerge_inserts_in_total", (("shard", "0"),), 100.0),
                ("lmerge_inserts_in_total", (("shard", "1"),), 50.0),
            ]
        )
        assert "repro top" in table
        assert "150" in table  # headline totals fold across shards
        lines = [line for line in table.splitlines() if line.strip()]
        shard_lines = [
            line for line in lines if line.strip().startswith(("0 ", "1 "))
        ]
        assert len(shard_lines) == 2

    def test_top_loop_against_live_server(self, server):
        buffer = io.StringIO()
        status = top(
            f"{server.host}:{server.port}",
            interval=0.01,
            iterations=2,
            out=buffer,
        )
        assert status == 0
        rendered = buffer.getvalue()
        assert rendered.count("repro top — live merge telemetry") == 2
        assert "shard_queue_depth" not in rendered  # table cells, not names
        assert "events_total" not in rendered or "12" in rendered

    def test_top_unreachable_endpoint(self):
        buffer = io.StringIO()
        status = top(
            "127.0.0.1:1",  # nothing listens on port 1
            interval=0.01,
            iterations=1,
            out=buffer,
        )
        assert status == 1
        assert "cannot scrape" in buffer.getvalue()
