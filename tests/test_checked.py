"""Runtime property sanitization (PropertyChecker / MergeCheck)."""

import pytest

from repro.analysis.checked import (
    JointOrderTracker,
    MergeCheck,
    PropertyChecker,
    PropertyViolationError,
)
from repro.engine.operator import CollectorSink
from repro.streams.properties import (
    PropertyTracker,
    Restriction,
    StreamProperties,
    classify,
    measure_properties,
    required_properties,
)
from repro.temporal.elements import Adjust, Insert, Stable
from tests.conftest import small_stream


def _checked(declared, elements):
    checker = PropertyChecker(declared, name="t")
    sink = CollectorSink()
    checker.subscribe(sink)
    for element in elements:
        checker.receive(element)
    return checker, sink


class TestPropertyChecker:
    def test_clean_stream_passes_through(self):
        stream = small_stream(count=100, seed=1, disorder=0.0, min_gap=1)
        checker, sink = _checked(
            required_properties(Restriction.R0), stream
        )
        assert list(sink.stream) == list(stream)
        assert checker.observed().strictly_increasing

    def test_disorder_violates_ordered(self):
        elements = [Insert("a", 5, 10), Insert("b", 3, 10)]
        with pytest.raises(PropertyViolationError) as exc:
            _checked(StreamProperties(ordered=True), elements)
        assert "ordered" in str(exc.value)
        assert exc.value.index == 1

    def test_adjust_violates_insert_only(self):
        elements = [Insert("a", 5, 10), Adjust("a", 5, 10, 5)]
        with pytest.raises(PropertyViolationError, match="insert_only"):
            _checked(StreamProperties(insert_only=True), elements)

    def test_duplicate_key_violates_key_property(self):
        elements = [Insert("a", 5, 10), Insert("a", 5, 10)]
        with pytest.raises(PropertyViolationError, match="key_vs_payload"):
            _checked(StreamProperties(key_vs_payload=True), elements)

    def test_cancel_then_reinsert_keeps_key(self):
        elements = [
            Insert("a", 5, 10),
            Adjust("a", 5, 10, 5),  # cancel
            Insert("a", 5, 10),  # legal re-insert
        ]
        checker, _ = _checked(StreamProperties(key_vs_payload=True), elements)
        assert checker.observed().key_vs_payload

    def test_undeclared_flags_never_raise(self):
        elements = [
            Insert("a", 5, 10),
            Insert("b", 3, 10),
            Adjust("a", 5, 10, 5),
        ]
        checker, _ = _checked(StreamProperties.unknown(), elements)
        assert not checker.observed().ordered

    def test_batch_checks_before_emitting(self):
        checker = PropertyChecker(StreamProperties(ordered=True))
        sink = CollectorSink()
        checker.subscribe(sink)
        with pytest.raises(PropertyViolationError):
            checker.receive_batch([Insert("a", 5, 9), Insert("b", 1, 9)])
        assert len(sink.stream) == 0  # nothing emitted from a bad batch


class TestCheckerMeasureAgreement:
    """The incremental checker and measure_properties are one semantics.

    Regression-pins the satellite fix: empty and single-element streams
    must agree between the offline and incremental paths.
    """

    CASES = [
        [],
        [Insert("a", 1, 5)],
        [Stable(3)],
        [Adjust("a", 1, 5, 1)],
        [Insert("a", 1, 5), Insert("b", 1, 6)],
        [Insert("a", 5, 9), Insert("b", 3, 9)],
        [Insert("a", 1, 5), Adjust("a", 1, 5, 1), Insert("a", 1, 5)],
    ]

    def test_agreement_on_edge_cases(self):
        for elements in self.CASES:
            offline = measure_properties(elements)
            checker = PropertyChecker(StreamProperties.unknown())
            for element in elements:
                checker.receive(element)
            assert checker.observed() == offline, elements

    def test_empty_stream_upholds_everything(self):
        assert measure_properties([]) == StreamProperties.strongest()
        assert (
            PropertyTracker().current() == StreamProperties.strongest()
        )

    def test_single_adjust_breaks_exactly_insert_only(self):
        measured = measure_properties([Adjust("a", 1, 5, 1)])
        assert measured == StreamProperties.strongest().weaken(
            insert_only=False
        )
        broken = PropertyTracker().observe(Adjust("a", 1, 5, 1))
        assert broken == ("insert_only",)

    def test_agreement_on_generated_stream(self):
        stream = small_stream(count=300, seed=9, disorder=0.25)
        checker = PropertyChecker(StreamProperties.unknown())
        for element in stream:
            checker.receive(element)
        assert checker.observed() == measure_properties(stream)


class TestJointOrder:
    def test_identical_orders_agree(self):
        joint = JointOrderTracker()
        for stream_index in (0, 1):
            assert joint.observe_insert(stream_index, 5, "a")
            assert joint.observe_insert(stream_index, 5, "b")
        assert joint.agreed

    def test_swapped_orders_disagree(self):
        joint = JointOrderTracker()
        joint.observe_insert(0, 5, "a")
        joint.observe_insert(0, 5, "b")
        assert not joint.observe_insert(1, 5, "b")
        assert not joint.agreed

    def test_distinct_vs_never_compared(self):
        joint = JointOrderTracker()
        joint.observe_insert(0, 5, "a")
        assert joint.observe_insert(1, 6, "b")
        assert joint.agreed


class TestMergeCheck:
    def test_rank_ordered_duplicates_check_clean_as_r1(self):
        # Same same-Vs order on both replicas: R1's determinism holds
        # even though a single stream would call the duplicate ambiguous.
        streams = [
            [Insert("gold", 10, 20), Insert("silver", 10, 20), Stable(30)]
        ] * 2
        check = MergeCheck.for_restriction(Restriction.R1, 2)
        for index, stream in enumerate(streams):
            check.wrap(index, stream)
        assert check.observed_restriction() is Restriction.R1

    def test_arrival_ordered_duplicates_fail_r1(self):
        check = MergeCheck.for_restriction(Restriction.R1, 2)
        check.wrap(0, [Insert("a", 10, 20), Insert("b", 10, 20)])
        with pytest.raises(
            PropertyViolationError, match="deterministic_same_vs_order"
        ):
            check.wrap(1, [Insert("b", 10, 20), Insert("a", 10, 20)])

    def test_swapped_orders_pass_r2(self):
        check = MergeCheck.for_restriction(Restriction.R2, 2)
        check.wrap(0, [Insert("a", 10, 20), Insert("b", 10, 20)])
        check.wrap(1, [Insert("b", 10, 20), Insert("a", 10, 20)])
        assert check.observed_restriction() is Restriction.R2

    def test_observed_restriction_is_meet_of_inputs(self):
        check = MergeCheck(StreamProperties.unknown(), 2)
        check.wrap(0, [Insert("a", 1, 5), Insert("b", 2, 5)])
        check.wrap(1, [Insert("a", 1, 5), Adjust("a", 1, 5, 1)])
        observed = check.observed_properties()
        assert not observed.insert_only  # input 1's adjust dominates
        assert observed.ordered

    def test_required_properties_round_trip(self):
        for restriction in Restriction:
            assert classify(required_properties(restriction)) is restriction
