"""Sharded plans are semantically invisible (satellite property tests).

Two claims, both from the partitioning argument in ``repro.lmerge.shard``:

1. The sharded plan's emitted CTIs are exactly the pointwise minimum of
   the per-shard frontiers (ShardUnion alignment at the plan level).
2. For every variant R0-R4, the sharded output reconstitutes to the same
   TDB as the unsharded variant and the reference stream, for random
   shard counts, disorder levels, and partitioning key functions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.lmerge.shard import ShardedLMerge, shard
from repro.temporal.elements import Stable
from repro.temporal.tdb import reconstitute
from repro.theory.equivalence import equivalent_prefixes

from conftest import divergent_inputs, small_stream

ALL_VARIANTS = [LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR4]


def run_sharded(variant, inputs, num_shards, **kwargs):
    plan = shard(variant, num_shards, backend="serial", **kwargs)
    output = plan.merge(inputs, schedule="round_robin")
    return plan, output


def variant_inputs(variant, seed, disorder):
    """Inputs legal for *variant*: R0-R2 take strictly ordered,
    adjust-free replicas; R3/R4 take fully divergent speculative inputs."""
    if variant in (LMergeR0, LMergeR1, LMergeR2):
        reference = small_stream(
            count=150, seed=seed, disorder=0.0, min_gap=1
        )
        return reference, [reference, reference]
    reference = small_stream(count=150, seed=seed, disorder=disorder)
    return reference, divergent_inputs(reference, n=2)


class TestShardedTdbEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        variant=st.sampled_from(ALL_VARIANTS),
        num_shards=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=40),
        disorder=st.sampled_from([0.0, 0.2, 0.5]),
    )
    def test_sharded_matches_unsharded_tdb(
        self, variant, num_shards, seed, disorder
    ):
        reference, inputs = variant_inputs(variant, seed, disorder)

        plan, sharded_out = run_sharded(variant, inputs, num_shards)
        unsharded_out = variant().merge(inputs, schedule="round_robin")

        assert sharded_out.tdb() == unsharded_out.tdb() == reference.tdb()
        assert equivalent_prefixes(
            list(sharded_out),
            len(sharded_out),
            list(unsharded_out),
            len(unsharded_out),
        )

    def test_key_local_variants_are_element_identical(self):
        """R3/R4 make per-(Vs,payload) decisions from key-local state, so
        sharding preserves not just the TDB but the per-key element
        sequences: re-sorting both outputs by key yields identical lists.
        The unsharded run must consume the same interleaving, so it uses
        the batched driver with the plan's batch size."""
        reference = small_stream(count=300, seed=9, disorder=0.3)
        inputs = divergent_inputs(reference, n=3)
        for variant in (LMergeR3, LMergeR4):
            plan, sharded_out = run_sharded(variant, inputs, 4)
            unsharded_out = variant().merge_batched(
                inputs, schedule="round_robin", batch_size=64
            )

            def data_by_key(elements):
                ordered = {}
                for element in elements:
                    if isinstance(element, Stable):
                        continue
                    ordered.setdefault((element.vs, element.payload), []).append(
                        element
                    )
                return ordered

            assert data_by_key(sharded_out) == data_by_key(unsharded_out)

    @settings(max_examples=8, deadline=None)
    @given(
        num_shards=st.integers(min_value=2, max_value=5),
        modulus=st.integers(min_value=1, max_value=9),
    )
    def test_custom_key_fn_preserves_tdb(self, num_shards, modulus):
        reference = small_stream(count=120, seed=3, disorder=0.25)
        inputs = divergent_inputs(reference, n=2)
        plan, output = run_sharded(
            LMergeR4,
            inputs,
            num_shards,
            key_fn=lambda payload: hash(payload) % modulus,
        )
        assert output.tdb() == reference.tdb()


class TestPlanLevelCtiAlignment:
    @settings(max_examples=15, deadline=None)
    @given(
        num_shards=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=30),
    )
    def test_output_ctis_are_min_of_shard_frontiers(self, num_shards, seed):
        """Every CTI the plan emits equals the pointwise minimum of the
        shard frontiers at that moment, and the final frontier matches."""
        reference = small_stream(
            count=150, seed=seed, disorder=0.3, stable_freq=0.1
        )
        inputs = divergent_inputs(reference, n=2)
        plan = shard(LMergeR3, num_shards, backend="serial")
        output = plan.merge(inputs)

        emitted = [e.vc for e in output if isinstance(e, Stable)]
        assert emitted == sorted(set(emitted)), "CTIs strictly increase"
        assert plan.max_stable == (emitted[-1] if emitted else plan.max_stable)
        assert plan.max_stable == min(plan.shard_frontiers)

    def test_broadcast_stable_advances_every_shard(self):
        """A stable() fed to the plan is broadcast, so every shard frontier
        (and therefore their minimum) advances in lockstep."""
        plan = ShardedLMerge(LMergeR3, num_shards=3, backend="serial")
        plan.attach(0)
        plan.process_batch([Stable(50)], 0)
        assert plan.shard_frontiers == (50, 50, 50)
        assert plan.max_stable == 50
        plan.close()

    def test_output_reconstitutes_under_partial_consumption(self):
        """TDB of every output prefix ending at a CTI is a valid snapshot
        of some input prefix (sanity of mid-stream alignment)."""
        reference = small_stream(count=100, seed=5, disorder=0.2)
        inputs = divergent_inputs(reference, n=2)
        plan, output = run_sharded(LMergeR3, inputs, 3)
        elements = list(output)
        cti_positions = [
            i for i, e in enumerate(elements) if isinstance(e, Stable)
        ]
        for position in cti_positions[:: max(1, len(cti_positions) // 5)]:
            prefix_tdb = reconstitute(elements[: position + 1])
            assert prefix_tdb is not None
