"""Disorder analysis."""

import pytest

from repro.streams.analyze import measure_disorder
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.punctuation import with_heartbeats
from repro.temporal.elements import Insert, Stable
from repro.temporal.time import INFINITY


class TestMeasureDisorder:
    def test_in_order_stream(self):
        stats = measure_disorder(
            [Insert("a", 1), Insert("b", 2), Insert("c", 3)]
        )
        assert stats.inserts == 3
        assert stats.disordered == 0
        assert stats.disorder_fraction == 0.0
        assert stats.max_backshift == 0

    def test_backshift_measured(self):
        stats = measure_disorder(
            [Insert("a", 10), Insert("late", 3), Insert("later", 8)]
        )
        assert stats.disordered == 2
        assert stats.max_backshift == 7
        assert stats.mean_backshift == pytest.approx((7 + 2) / 2)

    def test_histogram_buckets(self):
        stats = measure_disorder(
            [Insert("a", 100), Insert("b", 99), Insert("c", 90), Insert("d", 40)]
        )
        # backshifts: 1 (bucket 0), 10 (bucket 3), 60 (bucket 5)
        assert stats.histogram == {0: 1, 3: 1, 5: 1}

    def test_stable_margin(self):
        stats = measure_disorder(
            [Insert("a", 10), Stable(8), Insert("b", 9), Insert("c", 20)]
        )
        assert stats.stables == 1
        assert stats.min_stable_margin == 1  # min future Vs 9 vs Vc 8

    def test_final_infinity_stable_ignored_for_margin(self):
        stats = measure_disorder([Insert("a", 10), Stable(INFINITY)])
        assert stats.min_stable_margin is None

    def test_generator_agreement(self):
        """The analyzer's disorder fraction matches the generator's own
        bookkeeping, and no backshift exceeds the disorder window."""
        config = GeneratorConfig(
            count=2000,
            seed=180,
            disorder=0.3,
            disorder_window=75,
            payload_blob_bytes=2,
        )
        generator = StreamGenerator(config)
        stream = generator.generate()
        stats = measure_disorder(stream)
        # The analyzer measures backshift against the *observed* frontier,
        # so a shifted element following another shifted element may still
        # look in-order: it reports at most the generator's figure, and
        # close to it.
        assert stats.disorder_fraction <= generator.stats.achieved_disorder
        assert stats.disorder_fraction == pytest.approx(
            generator.stats.achieved_disorder, abs=0.08
        )
        assert stats.max_backshift <= 75

    def test_suggested_delay_feeds_heartbeats(self):
        """End-to-end: measure a stream, re-punctuate it with the
        suggested watermark, get a valid equivalent stream."""
        config = GeneratorConfig(
            count=800,
            seed=181,
            disorder=0.4,
            disorder_window=60,
            stable_freq=0.0,
            payload_blob_bytes=2,
        )
        stream = StreamGenerator(config).generate()
        stats = measure_disorder(stream)
        pulsed = with_heartbeats(
            stream, max_delay=stats.suggested_max_delay(), every=40
        )
        assert pulsed.tdb() == stream.tdb()

    def test_non_element_rejected(self):
        with pytest.raises(TypeError):
            measure_disorder(["junk"])
