"""Tests for repro.temporal.time."""

import math

import pytest

from repro.temporal.time import (
    INFINITY,
    MINUS_INFINITY,
    is_finite,
    validate_interval,
    validate_timestamp,
)


class TestConstants:
    def test_infinity_is_float_inf(self):
        assert INFINITY == math.inf

    def test_minus_infinity_below_everything(self):
        assert MINUS_INFINITY < -(10**18)

    def test_infinity_above_everything(self):
        assert INFINITY > 10**18


class TestIsFinite:
    def test_int_is_finite(self):
        assert is_finite(42)

    def test_zero_is_finite(self):
        assert is_finite(0)

    def test_negative_is_finite(self):
        assert is_finite(-5)

    def test_float_is_finite(self):
        assert is_finite(3.5)

    def test_infinity_is_not_finite(self):
        assert not is_finite(INFINITY)

    def test_minus_infinity_is_not_finite(self):
        assert not is_finite(MINUS_INFINITY)


class TestValidateTimestamp:
    def test_accepts_int(self):
        assert validate_timestamp(7) == 7

    def test_accepts_float(self):
        assert validate_timestamp(7.5) == 7.5

    def test_accepts_infinity(self):
        assert validate_timestamp(INFINITY) == INFINITY

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            validate_timestamp("7")

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            validate_timestamp(None)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            validate_timestamp(True)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            validate_timestamp(float("nan"))

    def test_error_names_the_field(self):
        with pytest.raises(TypeError, match="Vs"):
            validate_timestamp("x", name="Vs")


class TestValidateInterval:
    def test_accepts_normal_interval(self):
        validate_interval(1, 5)

    def test_accepts_empty_interval(self):
        validate_interval(5, 5)  # transient (cancel encoding)

    def test_accepts_infinite_end(self):
        validate_interval(1, INFINITY)

    def test_rejects_infinite_start(self):
        with pytest.raises(ValueError):
            validate_interval(INFINITY, INFINITY)

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            validate_interval(5, 1)
