"""Tests for the stream-property lattice and R0-R4 classification."""


from repro.streams.properties import (
    Restriction,
    StreamProperties,
    classify,
    measure_properties,
)
from repro.temporal.elements import Adjust, Insert, Stable


class TestClassification:
    """The Section III-C spectrum, case by case."""

    def test_unknown_is_r4(self):
        assert classify(StreamProperties.unknown()) is Restriction.R4

    def test_strongest_is_r0(self):
        assert classify(StreamProperties.strongest()) is Restriction.R0

    def test_r0_requires_strictly_increasing_insert_only(self):
        properties = StreamProperties(strictly_increasing=True, insert_only=True)
        assert classify(properties) is Restriction.R0

    def test_ordered_alone_is_not_r0(self):
        properties = StreamProperties(
            ordered=True, insert_only=True, deterministic_same_vs_order=True
        )
        assert classify(properties) is Restriction.R1

    def test_r2_requires_key(self):
        properties = StreamProperties(
            ordered=True, insert_only=True, key_vs_payload=True
        )
        assert classify(properties) is Restriction.R2

    def test_ordered_insert_only_without_key_or_determinism_is_r4(self):
        properties = StreamProperties(ordered=True, insert_only=True)
        assert classify(properties) is Restriction.R4

    def test_key_alone_is_r3(self):
        assert classify(StreamProperties(key_vs_payload=True)) is Restriction.R3

    def test_adjusts_with_key_is_r3(self):
        properties = StreamProperties(ordered=True, key_vs_payload=True)
        assert classify(properties) is Restriction.R3

    def test_strictly_increasing_with_adjusts_is_r3_when_keyed(self):
        properties = StreamProperties(
            strictly_increasing=True, key_vs_payload=True
        )
        assert classify(properties) is Restriction.R3


class TestNormalization:
    def test_strictly_increasing_implies_ordered(self):
        properties = StreamProperties(strictly_increasing=True)
        assert properties.ordered

    def test_weaken(self):
        strong = StreamProperties.strongest()
        weakened = strong.weaken(insert_only=False)
        assert not weakened.insert_only
        assert weakened.ordered  # untouched guarantees survive


class TestMeet:
    def test_meet_is_conjunction(self):
        left = StreamProperties(ordered=True, insert_only=True)
        right = StreamProperties(ordered=True, key_vs_payload=True)
        met = left.meet(right)
        assert met.ordered
        assert not met.insert_only
        assert not met.key_vs_payload

    def test_meet_with_unknown_is_unknown(self):
        met = StreamProperties.strongest().meet(StreamProperties.unknown())
        assert met == StreamProperties.unknown()

    def test_meet_idempotent(self):
        properties = StreamProperties(ordered=True, key_vs_payload=True)
        assert properties.meet(properties) == properties

    def test_meet_commutative(self):
        a = StreamProperties(ordered=True, insert_only=True)
        b = StreamProperties(strictly_increasing=True)
        assert a.meet(b) == b.meet(a)


class TestMeasure:
    def test_strictly_increasing_stream(self):
        elements = [Insert("A", 1), Insert("B", 2), Stable(3), Insert("C", 4)]
        properties = measure_properties(elements)
        assert properties.strictly_increasing
        assert properties.insert_only
        assert classify(properties) is Restriction.R0

    def test_duplicate_vs_detected(self):
        elements = [Insert("A", 1), Insert("B", 1)]
        properties = measure_properties(elements)
        assert properties.ordered
        assert not properties.strictly_increasing
        assert not properties.deterministic_same_vs_order

    def test_disorder_detected(self):
        elements = [Insert("A", 5), Insert("B", 3)]
        properties = measure_properties(elements)
        assert not properties.ordered

    def test_adjusts_detected(self):
        elements = [Insert("A", 1, 5), Adjust("A", 1, 5, 9)]
        properties = measure_properties(elements)
        assert not properties.insert_only

    def test_duplicate_key_breaks_key_property(self):
        elements = [Insert("A", 1, 5), Insert("A", 1, 9)]
        assert not measure_properties(elements).key_vs_payload

    def test_empty_stream_measures_strong(self):
        properties = measure_properties([])
        assert properties.ordered and properties.insert_only
