"""Tests for the stream-property lattice and R0-R4 classification."""

import dataclasses

from repro.streams.properties import (
    Restriction,
    StreamProperties,
    classify,
    measure_joint_properties,
    measure_properties,
    required_properties,
)
from repro.temporal.elements import Adjust, Insert, Stable


class TestClassification:
    """The Section III-C spectrum, case by case."""

    def test_unknown_is_r4(self):
        assert classify(StreamProperties.unknown()) is Restriction.R4

    def test_strongest_is_r0(self):
        assert classify(StreamProperties.strongest()) is Restriction.R0

    def test_r0_requires_strictly_increasing_insert_only(self):
        properties = StreamProperties(strictly_increasing=True, insert_only=True)
        assert classify(properties) is Restriction.R0

    def test_ordered_alone_is_not_r0(self):
        properties = StreamProperties(
            ordered=True, insert_only=True, deterministic_same_vs_order=True
        )
        assert classify(properties) is Restriction.R1

    def test_r2_requires_key(self):
        properties = StreamProperties(
            ordered=True, insert_only=True, key_vs_payload=True
        )
        assert classify(properties) is Restriction.R2

    def test_ordered_insert_only_without_key_or_determinism_is_r4(self):
        properties = StreamProperties(ordered=True, insert_only=True)
        assert classify(properties) is Restriction.R4

    def test_key_alone_is_r3(self):
        assert classify(StreamProperties(key_vs_payload=True)) is Restriction.R3

    def test_adjusts_with_key_is_r3(self):
        properties = StreamProperties(ordered=True, key_vs_payload=True)
        assert classify(properties) is Restriction.R3

    def test_strictly_increasing_with_adjusts_is_r3_when_keyed(self):
        properties = StreamProperties(
            strictly_increasing=True, key_vs_payload=True
        )
        assert classify(properties) is Restriction.R3


class TestNormalization:
    def test_strictly_increasing_implies_ordered(self):
        properties = StreamProperties(strictly_increasing=True)
        assert properties.ordered

    def test_weaken(self):
        strong = StreamProperties.strongest()
        weakened = strong.weaken(insert_only=False)
        assert not weakened.insert_only
        assert weakened.ordered  # untouched guarantees survive


class TestMeet:
    def test_meet_is_conjunction(self):
        left = StreamProperties(ordered=True, insert_only=True)
        right = StreamProperties(ordered=True, key_vs_payload=True)
        met = left.meet(right)
        assert met.ordered
        assert not met.insert_only
        assert not met.key_vs_payload

    def test_meet_with_unknown_is_unknown(self):
        met = StreamProperties.strongest().meet(StreamProperties.unknown())
        assert met == StreamProperties.unknown()

    def test_meet_idempotent(self):
        properties = StreamProperties(ordered=True, key_vs_payload=True)
        assert properties.meet(properties) == properties

    def test_meet_commutative(self):
        a = StreamProperties(ordered=True, insert_only=True)
        b = StreamProperties(strictly_increasing=True)
        assert a.meet(b) == b.meet(a)


class TestMeasure:
    def test_strictly_increasing_stream(self):
        elements = [Insert("A", 1), Insert("B", 2), Stable(3), Insert("C", 4)]
        properties = measure_properties(elements)
        assert properties.strictly_increasing
        assert properties.insert_only
        assert classify(properties) is Restriction.R0

    def test_duplicate_vs_detected(self):
        elements = [Insert("A", 1), Insert("B", 1)]
        properties = measure_properties(elements)
        assert properties.ordered
        assert not properties.strictly_increasing
        assert not properties.deterministic_same_vs_order

    def test_disorder_detected(self):
        elements = [Insert("A", 5), Insert("B", 3)]
        properties = measure_properties(elements)
        assert not properties.ordered

    def test_adjusts_detected(self):
        elements = [Insert("A", 1, 5), Adjust("A", 1, 5, 9)]
        properties = measure_properties(elements)
        assert not properties.insert_only

    def test_duplicate_key_breaks_key_property(self):
        elements = [Insert("A", 1, 5), Insert("A", 1, 9)]
        assert not measure_properties(elements).key_vs_payload

    def test_empty_stream_measures_strong(self):
        properties = measure_properties([])
        assert properties.ordered and properties.insert_only


class TestWeakenRoundTrips:
    def test_weaken_nothing_is_identity(self):
        for restriction in Restriction:
            properties = required_properties(restriction)
            assert properties.weaken() == properties

    def test_weaken_then_restore_round_trips(self):
        strong = StreamProperties.strongest()
        for flag in (
            "insert_only",
            "deterministic_same_vs_order",
            "key_vs_payload",
        ):
            weakened = strong.weaken(**{flag: False})
            assert not getattr(weakened, flag)
            restored = weakened.weaken(**{flag: True})
            assert restored == strong

    def test_weaken_ordered_requires_dropping_strictness(self):
        strong = StreamProperties.strongest()
        # strictly_increasing normalizes ordered back on: dropping ordered
        # alone is a no-op from the strongest point.
        assert strong.weaken(ordered=False).ordered
        weakened = strong.weaken(ordered=False, strictly_increasing=False)
        assert not weakened.ordered
        restored = weakened.weaken(ordered=True, strictly_increasing=True)
        assert restored == strong

    def test_weaken_strictly_increasing_keeps_ordered(self):
        weakened = StreamProperties.strongest().weaken(
            strictly_increasing=False
        )
        assert weakened.ordered and not weakened.strictly_increasing
        # Restoring the flag re-normalizes back to strongest.
        assert (
            weakened.weaken(strictly_increasing=True)
            == StreamProperties.strongest()
        )

    def test_weaken_never_mutates(self):
        original = required_properties(Restriction.R1)
        original.weaken(ordered=False)
        assert original == required_properties(Restriction.R1)


class TestBoundaryFlips:
    """Single flag flips that move a stream between adjacent variants."""

    def test_r0_to_r1_on_strictness(self):
        r0 = required_properties(Restriction.R0)
        assert classify(r0) is Restriction.R0
        relaxed = r0.weaken(
            strictly_increasing=False, deterministic_same_vs_order=True
        )
        assert classify(relaxed) is Restriction.R1

    def test_r1_to_r2_on_determinism_vs_key(self):
        r1 = required_properties(Restriction.R1)
        flipped = r1.weaken(
            deterministic_same_vs_order=False, key_vs_payload=True
        )
        assert classify(flipped) is Restriction.R2
        # And back: restoring determinism (key may stay) returns to R1.
        assert classify(flipped.weaken(deterministic_same_vs_order=True)) is (
            Restriction.R1
        )

    def test_r2_to_r3_on_order(self):
        r2 = required_properties(Restriction.R2)
        assert classify(r2.weaken(ordered=False)) is Restriction.R3
        assert classify(r2) is Restriction.R2

    def test_r2_to_r3_on_insert_only(self):
        r2 = required_properties(Restriction.R2)
        assert classify(r2.weaken(insert_only=False)) is Restriction.R3

    def test_r3_to_r4_on_key(self):
        r3 = required_properties(Restriction.R3)
        assert classify(r3.weaken(key_vs_payload=False)) is Restriction.R4

    def test_required_properties_classify_round_trip(self):
        for restriction in Restriction:
            assert classify(required_properties(restriction)) is restriction

    def test_required_properties_are_minimal(self):
        # Dropping any set flag must weaken the classification.
        for restriction in Restriction:
            properties = required_properties(restriction)
            for field in dataclasses.fields(properties):
                if not getattr(properties, field.name):
                    continue
                if (
                    field.name == "ordered"
                    and properties.strictly_increasing
                ):
                    # Normalization restores ordered: not independently
                    # droppable while strictness holds.
                    continue
                weaker = properties.weaken(**{field.name: False})
                assert classify(weaker) is not restriction, (
                    restriction,
                    field.name,
                )


class TestMeetEdgeCases:
    def test_meet_unknown_is_absorbing(self):
        unknown = StreamProperties.unknown()
        for restriction in Restriction:
            assert required_properties(restriction).meet(unknown) == unknown

    def test_meet_strongest_is_identity(self):
        strongest = StreamProperties.strongest()
        for restriction in Restriction:
            properties = required_properties(restriction)
            assert properties.meet(strongest) == properties

    def test_meet_classification_never_strengthens(self):
        for left in Restriction:
            for right in Restriction:
                met = required_properties(left).meet(
                    required_properties(right)
                )
                assert classify(met) >= max(left, right)

    def test_meet_associative(self):
        a = required_properties(Restriction.R0)
        b = required_properties(Restriction.R2)
        c = StreamProperties(key_vs_payload=True, ordered=True)
        assert a.meet(b).meet(c) == a.meet(b.meet(c))


class TestJointMeasure:
    def test_no_duplicates_keeps_determinism_vacuously(self):
        streams = [
            [Insert("A", 1, 5), Insert("B", 2, 5)],
            [Insert("A", 1, 5), Insert("B", 2, 5)],
        ]
        assert measure_joint_properties(streams).deterministic_same_vs_order

    def test_agreeing_duplicate_orders_keep_determinism(self):
        streams = [
            [Insert("A", 1, 5), Insert("B", 1, 5)],
            [Insert("A", 1, 5), Insert("B", 1, 5)],
        ]
        properties = measure_joint_properties(streams)
        assert properties.deterministic_same_vs_order
        assert classify(properties) is Restriction.R1

    def test_disagreeing_duplicate_orders_break_determinism(self):
        streams = [
            [Insert("A", 1, 5), Insert("B", 1, 5)],
            [Insert("B", 1, 5), Insert("A", 1, 5)],
        ]
        assert not measure_joint_properties(
            streams
        ).deterministic_same_vs_order
