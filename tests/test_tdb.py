"""Tests for TDB reconstitution — including the paper's Table I and
Example 3 worked examples."""

import pytest

from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Close, Insert, Open, Stable
from repro.temporal.event import Event, FreezeStatus
from repro.temporal.tdb import (
    TDB,
    StreamViolationError,
    reconstitute,
    reconstitute_open_close,
    reconstitute_prefix,
)
from repro.temporal.time import INFINITY, MINUS_INFINITY


class TestApplyInsert:
    def test_insert_adds_event(self):
        tdb = reconstitute([Insert("A", 1, 5)])
        assert Event(1, "A", 5) in tdb
        assert len(tdb) == 1

    def test_duplicate_inserts_accumulate(self):
        tdb = reconstitute([Insert("A", 1, 5), Insert("A", 1, 5)])
        assert tdb.count(Event(1, "A", 5)) == 2

    def test_insert_behind_stable_raises(self):
        with pytest.raises(StreamViolationError):
            reconstitute([Stable(10), Insert("A", 5, 20)])

    def test_insert_at_stable_point_allowed(self):
        tdb = reconstitute([Stable(10), Insert("A", 10, 20)])
        assert Event(10, "A", 20) in tdb

    def test_lenient_mode_drops_violations(self):
        tdb = reconstitute([Stable(10), Insert("A", 5, 20)], strict=False)
        assert len(tdb) == 0


class TestApplyAdjust:
    def test_adjust_changes_end(self):
        tdb = reconstitute([Insert("A", 1, 5), Adjust("A", 1, 5, 9)])
        assert Event(1, "A", 9) in tdb
        assert Event(1, "A", 5) not in tdb

    def test_adjust_chain_example5(self):
        """The paper's Example 5: insert(A,6,20), adjust(A,6,20,30),
        adjust(A,6,30,25) == insert(A,6,25)."""
        chained = reconstitute(
            [Insert("A", 6, 20), Adjust("A", 6, 20, 30), Adjust("A", 6, 30, 25)]
        )
        assert chained == reconstitute([Insert("A", 6, 25)])

    def test_cancel_removes_event(self):
        tdb = reconstitute([Insert("A", 1, 5), Adjust("A", 1, 5, 1)])
        assert len(tdb) == 0

    def test_adjust_missing_event_raises(self):
        with pytest.raises(StreamViolationError):
            reconstitute([Adjust("A", 1, 5, 9)])

    def test_adjust_wrong_vold_raises(self):
        with pytest.raises(StreamViolationError):
            reconstitute([Insert("A", 1, 5), Adjust("A", 1, 6, 9)])

    def test_adjust_behind_stable_raises(self):
        with pytest.raises(StreamViolationError):
            reconstitute([Insert("A", 1, 5), Stable(10), Adjust("A", 1, 5, 9)])

    def test_adjust_only_one_of_duplicates(self):
        tdb = reconstitute(
            [Insert("A", 1, 5), Insert("A", 1, 5), Adjust("A", 1, 5, 9)]
        )
        assert tdb.count(Event(1, "A", 5)) == 1
        assert tdb.count(Event(1, "A", 9)) == 1


class TestApplyStable:
    def test_stable_sets_point(self):
        tdb = reconstitute([Stable(10)])
        assert tdb.stable_point == 10

    def test_stable_regression_is_noop(self):
        tdb = reconstitute([Stable(10), Stable(5)])
        assert tdb.stable_point == 10

    def test_freeze_statuses(self):
        tdb = reconstitute(
            [Insert("FF", 1, 5), Insert("HF", 1, 20), Insert("UF", 15, 20), Stable(10)]
        )
        assert tdb.status_of(Event(1, "FF", 5)) is FreezeStatus.FULLY_FROZEN
        assert tdb.status_of(Event(1, "HF", 20)) is FreezeStatus.HALF_FROZEN
        assert tdb.status_of(Event(15, "UF", 20)) is FreezeStatus.UNFROZEN
        assert tdb.events_with_status(FreezeStatus.FULLY_FROZEN) == [Event(1, "FF", 5)]


class TestTableI:
    """The paper's Table I: Phy1 and Phy2 reconstitute identically."""

    PHY1 = [
        Insert("B", 8, INFINITY),
        Insert("A", 6, 12),
        Adjust("B", 8, INFINITY, 10),
        Stable(11),
        Stable(INFINITY),
    ]
    PHY2 = [
        Insert("A", 6, 7),
        Insert("B", 8, 15),
        Adjust("A", 6, 7, 12),
        Adjust("B", 8, 15, 10),
        Stable(INFINITY),
    ]
    LOGICAL = TDB([Event(6, "A", 12), Event(8, "B", 10)])

    def test_phy1_reconstitutes_to_logical(self):
        assert reconstitute(self.PHY1) == self.LOGICAL

    def test_phy2_reconstitutes_to_logical(self):
        assert reconstitute(self.PHY2) == self.LOGICAL

    def test_streams_equivalent(self):
        assert PhysicalStream(self.PHY1).equivalent(PhysicalStream(self.PHY2))

    def test_prefixes_not_equivalent_but_streams_are(self):
        """Prefixes of the two physical streams differ (they are merely
        compatible); the full streams coincide."""
        assert reconstitute_prefix(self.PHY1, 2) != reconstitute_prefix(self.PHY2, 2)


class TestExample3OpenClose:
    """The paper's Example 3: three equivalent open/close prefixes."""

    S5 = [Open("A", 1), Open("B", 2), Open("C", 3), Close("A", 4), Close("B", 5)]
    U5 = [Open("A", 1), Close("A", 4), Open("B", 2), Close("B", 5), Open("C", 3)]
    W6 = [
        Open("B", 2),
        Close("B", 6),
        Open("A", 1),
        Open("C", 3),
        Close("A", 4),
        Close("B", 5),
    ]
    LOGICAL = TDB([Event(1, "A", 4), Event(2, "B", 5), Event(3, "C")])

    def test_s5(self):
        assert reconstitute_open_close(self.S5) == self.LOGICAL

    def test_u5(self):
        assert reconstitute_open_close(self.U5) == self.LOGICAL

    def test_w6_close_revision(self):
        """close(B,5) in W[6] revises the earlier close(B,6)."""
        assert reconstitute_open_close(self.W6) == self.LOGICAL

    def test_double_open_raises(self):
        with pytest.raises(StreamViolationError):
            reconstitute_open_close([Open("A", 1), Open("A", 2)])

    def test_close_without_open_raises(self):
        with pytest.raises(StreamViolationError):
            reconstitute_open_close([Close("A", 2)])


class TestQueries:
    def test_snapshot(self):
        tdb = reconstitute([Insert("A", 1, 5), Insert("B", 3, 8), Insert("A", 6, 9)])
        assert tdb.snapshot(4) == {"A": 1, "B": 1}
        assert tdb.snapshot(7) == {"A": 1, "B": 1}
        assert tdb.snapshot(8) == {"A": 1}

    def test_events_for_key(self):
        tdb = reconstitute([Insert("A", 1, 5), Insert("A", 1, 9)])
        assert sorted(tdb.events_for_key(1, "A")) == [
            Event(1, "A", 5),
            Event(1, "A", 9),
        ]

    def test_key_is_unique(self):
        assert reconstitute([Insert("A", 1, 5), Insert("A", 2, 5)]).key_is_unique()
        assert not reconstitute([Insert("A", 1, 5), Insert("A", 1, 9)]).key_is_unique()

    def test_max_ve(self):
        assert reconstitute([Insert("A", 1, 5), Insert("B", 1)]).max_ve() == 5
        assert reconstitute([]).max_ve() == MINUS_INFINITY

    def test_copy_is_independent(self):
        tdb = reconstitute([Insert("A", 1, 5)])
        clone = tdb.copy()
        clone.apply(Insert("B", 2, 6))
        assert len(tdb) == 1 and len(clone) == 2

    def test_equality_ignores_zero_counts(self):
        left = reconstitute([Insert("A", 1, 5), Adjust("A", 1, 5, 9)])
        right = reconstitute([Insert("A", 1, 9)])
        assert left == right

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(TDB())

    def test_prefix_out_of_range(self):
        with pytest.raises(IndexError):
            reconstitute_prefix([Insert("A", 1)], 2)
