"""ParallelRuntime: backend equivalence, backpressure, error paths."""

import pickle

import pytest

from repro.engine.parallel import (
    BACKENDS,
    ParallelRuntime,
    ShardError,
    merge_factory,
)
from repro.lmerge.r3 import LMergeR3
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import INFINITY

from conftest import divergent_inputs, small_stream


def drive(runtime, inputs):
    """Feed whole streams as one envelope per stream, gather all output."""
    outputs = {shard: [] for shard in range(runtime.num_shards)}
    for stream_id, stream in enumerate(inputs):
        runtime.broadcast_attach(stream_id)
    for stream_id, stream in enumerate(inputs):
        runtime.submit(stream_id % runtime.num_shards, stream_id, list(stream))
        for shard, elements in runtime.poll():
            outputs[shard].extend(elements)
    stats = runtime.close()
    for shard, elements in runtime.poll():
        outputs[shard].extend(elements)
    return outputs, stats


class TestElementPickling:
    """The process backend ships pickled envelopes; the frozen __slots__
    elements must round-trip."""

    @pytest.mark.parametrize(
        "element",
        [
            Insert(("p", 1), 3, 9),
            Insert("x", 1),
            Adjust(("p", 1), 3, 9, 12),
            Stable(7),
            Stable(INFINITY),
        ],
    )
    def test_round_trip(self, element):
        clone = pickle.loads(pickle.dumps(element))
        assert clone == element
        assert type(clone) is type(element)

    def test_batch_round_trip(self):
        batch = list(small_stream(count=50))
        assert pickle.loads(pickle.dumps(batch)) == batch


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackends:
    def test_single_shard_matches_plain_merge(self, backend):
        reference = small_stream(count=200, seed=31)
        inputs = divergent_inputs(reference, n=2)
        runtime = ParallelRuntime(
            merge_factory(LMergeR3), num_shards=1, backend=backend
        ).start()
        outputs, stats = drive(runtime, inputs)

        plain = LMergeR3()
        plain_out = plain.merge(inputs, schedule="sequential")
        merged = outputs[0]
        # One shard, whole streams sequentially: identical elements.
        assert merged == list(plain_out)
        assert stats[0].elements_out == plain.stats.elements_out

    def test_stats_come_back_per_shard(self, backend):
        reference = small_stream(count=120, seed=7)
        runtime = ParallelRuntime(
            merge_factory(LMergeR3), num_shards=2, backend=backend
        ).start()
        runtime.broadcast_attach(0)
        runtime.submit(0, 0, list(reference))
        runtime.submit(1, 0, list(reference))
        stats = runtime.close()
        assert len(stats) == 2
        assert all(s.elements_in == len(reference) for s in stats)

    def test_close_is_idempotent(self, backend):
        runtime = ParallelRuntime(
            merge_factory(LMergeR3), num_shards=2, backend=backend
        ).start()
        runtime.broadcast_attach(0)
        first = runtime.close()
        assert runtime.close() is first

    def test_submit_after_close_rejected(self, backend):
        runtime = ParallelRuntime(
            merge_factory(LMergeR3), num_shards=1, backend=backend
        ).start()
        runtime.close()
        with pytest.raises(RuntimeError):
            runtime.submit(0, 0, [Insert("a", 1)])

    def test_context_manager_closes(self, backend):
        with ParallelRuntime(
            merge_factory(LMergeR3), num_shards=1, backend=backend
        ) as runtime:
            runtime.broadcast_attach(0)
            runtime.submit(0, 0, [Insert("a", 1), Stable(INFINITY)])
        assert runtime.stats[0].inserts_in == 1


class TestGuards:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ParallelRuntime(merge_factory(LMergeR3), 2, backend="gpu")

    def test_unstarted_rejects_submit(self):
        runtime = ParallelRuntime(merge_factory(LMergeR3), 2)
        with pytest.raises(RuntimeError):
            runtime.submit(0, 0, [Insert("a", 1)])

    def test_double_start_rejected(self):
        runtime = ParallelRuntime(merge_factory(LMergeR3), 1, backend="serial")
        runtime.start()
        with pytest.raises(RuntimeError):
            runtime.start()
        runtime.close()

    def test_factory_is_picklable(self):
        factory = merge_factory(LMergeR3)
        clone = pickle.loads(pickle.dumps(factory))
        merge = clone(lambda element: None)
        assert isinstance(merge, LMergeR3)


class TestErrorPropagation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_error_raises_shard_error(self, backend):
        runtime = ParallelRuntime(
            merge_factory(LMergeR3), num_shards=2, backend=backend
        ).start()
        # An element from an unattached stream makes the worker raise.
        runtime.submit(0, 99, [Insert("a", 1)])
        with pytest.raises(ShardError) as excinfo:
            runtime.close()
        assert "unattached" in excinfo.value.details


class TestBackpressure:
    def test_bounded_queue_caps_capacity(self):
        runtime = ParallelRuntime(
            merge_factory(LMergeR3),
            num_shards=1,
            backend="thread",
            queue_capacity=2,
        )
        assert runtime.queue_capacity == 2
        runtime.start()
        runtime.broadcast_attach(0)
        # Submissions beyond capacity block until the worker drains —
        # this completing at all is the backpressure test.
        for index in range(10):
            runtime.submit(0, 0, [Insert((0, index), index + 1)])
        stats = runtime.close()
        assert stats[0].inserts_in == 10
