"""Batched hot path: ``process_batch`` must match ``process`` exactly.

The batched execution mode (slotted-dispatch runs, per-variant fast
paths, single-descent index lookups) is pure mechanism — it must not
change a single output element or statistic.  Hypothesis drives random
workloads through random chunkings, schedules, and input counts for every
LMerge variant, comparing against the per-element path element for
element, MergeStats included.

Stable coalescing (``coalesce_stables=True``) intentionally relaxes this
to *logical* (TDB) equivalence — intermediate punctuation is absorbed —
so its tests assert TDB equality and a never-larger stable count instead.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operator import CollectorSink
from repro.engine.runtime import QueuedEdge, Runtime
from repro.lmerge.base import interleave, interleave_batches
from repro.lmerge.counting import CountingMerge
from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r3_naive import LMergeR3Naive
from repro.lmerge.r4 import LMergeR4
from repro.streams.divergence import diverge
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.temporal.elements import Adjust, Insert, Stable

from conftest import small_stream

ORDERED_VARIANTS = {
    "LMR0": LMergeR0,
    "LMR1": LMergeR1,
    "LMR2": LMergeR2,
}
GENERAL_VARIANTS = {
    "LMR3+": LMergeR3,
    "LMR3-": LMergeR3Naive,
    "LMR4": LMergeR4,
}
ALL_VARIANTS = {**ORDERED_VARIANTS, **GENERAL_VARIANTS}

SCHEDULES = ["round_robin", "sequential", "random"]


def _ordered_streams(seed, n):
    config = GeneratorConfig(
        count=150,
        seed=seed,
        disorder=0.0,
        min_gap=1,
        stable_freq=0.06,
        payload_blob_bytes=2,
        event_duration=60,
    )
    return [StreamGenerator(config).generate()] * n


def _general_streams(seed, n):
    reference = StreamGenerator(
        GeneratorConfig(
            count=150,
            seed=seed,
            disorder=0.25,
            stable_freq=0.08,
            payload_blob_bytes=2,
            event_duration=60,
        )
    ).generate()
    return [
        diverge(reference, seed=seed + i, speculate_fraction=0.3)
        for i in range(n)
    ]


def _streams_for(name, seed, n):
    if name in ORDERED_VARIANTS:
        return _ordered_streams(seed, n)
    return _general_streams(seed, n)


def _run_per_element(variant_cls, chunks, n_inputs):
    merge = variant_cls()
    for index in range(n_inputs):
        merge.attach(index)
    for chunk, stream_id in chunks:
        for element in chunk:
            merge.process(element, stream_id)
    return merge


def _run_batched(variant_cls, chunks, n_inputs, coalesce=False):
    merge = variant_cls()
    for index in range(n_inputs):
        merge.attach(index)
    for chunk, stream_id in chunks:
        merge.process_batch(chunk, stream_id, coalesce_stables=coalesce)
    return merge


class TestExactEquivalence:
    """process_batch == process, element for element, stats included."""

    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(sorted(ALL_VARIANTS)),
        seed=st.integers(0, 10**6),
        n_inputs=st.integers(1, 4),
        schedule=st.sampled_from(SCHEDULES),
        batch_size=st.integers(1, 97),
    )
    def test_identical_output_and_stats(
        self, name, seed, n_inputs, schedule, batch_size
    ):
        streams = _streams_for(name, seed % 19, n_inputs)
        chunks = list(
            interleave_batches(streams, schedule, seed, batch_size)
        )
        per = _run_per_element(ALL_VARIANTS[name], chunks, n_inputs)
        bat = _run_batched(ALL_VARIANTS[name], chunks, n_inputs)
        assert list(per.output) == list(bat.output)
        assert per.stats == bat.stats

    @pytest.mark.parametrize("name", sorted(ALL_VARIANTS))
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_merge_batched_driver(self, name, schedule):
        """The offline drivers agree under every schedule."""
        streams = _streams_for(name, 5, 3)
        per = ALL_VARIANTS[name]()
        out_per = per.merge(streams, schedule="sequential")
        bat = ALL_VARIANTS[name]()
        out_bat = bat.merge_batched(streams, schedule="sequential")
        assert list(out_per) == list(out_bat)
        assert per.stats == bat.stats
        # Other schedules chunk more coarsely — still a valid
        # interleaving, so the outputs stay logically equivalent.
        again = ALL_VARIANTS[name]()
        out_again = again.merge_batched(streams, schedule=schedule)
        assert out_again.tdb() == out_per.tdb()

    def test_counting_merge_uses_generic_path(self):
        """Variants without a fast path fall back to the per-element
        loop inside process_batch."""
        streams = _ordered_streams(3, 2)
        chunks = list(interleave_batches(streams, "round_robin", 0, 16))
        per = _run_per_element(CountingMerge, chunks, 2)
        bat = _run_batched(CountingMerge, chunks, 2)
        assert list(per.output) == list(bat.output)
        assert per.stats == bat.stats


class TestCoalescedStables:
    """coalesce_stables=True: logical equivalence, fewer stables out."""

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(sorted(ALL_VARIANTS)),
        seed=st.integers(0, 10**6),
        schedule=st.sampled_from(SCHEDULES),
    )
    def test_tdb_equivalent(self, name, seed, schedule):
        streams = _streams_for(name, seed % 19, 3)
        chunks = list(interleave_batches(streams, schedule, seed, 32))
        per = _run_per_element(ALL_VARIANTS[name], chunks, 3)
        bat = _run_batched(ALL_VARIANTS[name], chunks, 3, coalesce=True)
        assert per.output.tdb() == bat.output.tdb()
        assert bat.stats.stables_out <= per.stats.stables_out
        assert bat.stats.stables_in == per.stats.stables_in

    def test_coalesced_run_advances_once(self):
        """A run of stables with no data between them becomes one
        frontier advance at the maximum Vc."""
        merge = LMergeR3()
        merge.attach(0)
        merge.process_batch(
            [Insert("a", 1, 10), Stable(2), Stable(5), Stable(8)],
            0,
            coalesce_stables=True,
        )
        assert merge.max_stable == 8
        assert merge.stats.stables_in == 3
        assert merge.stats.stables_out == 1


class TestProcessBatchContract:
    def test_unattached_stream_rejected(self):
        merge = LMergeR3()
        with pytest.raises(Exception, match="unattached"):
            merge.process_batch([Insert("a", 1)], 99)

    def test_non_element_rejected(self):
        merge = LMergeR3()
        merge.attach(0)
        with pytest.raises(TypeError, match="not a stream element"):
            merge.process_batch([Insert("a", 1), object()], 0)

    def test_adjust_rejected_under_r0(self):
        merge = LMergeR0()
        merge.attach(0)
        with pytest.raises(TypeError, match="does not support adjust"):
            merge.process_batch([Adjust("a", 1, 5, 7)], 0)
        # The offending element was counted, mirroring process().
        assert merge.stats.adjusts_in == 1

    def test_empty_batch_is_noop(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.process_batch([], 0)
        assert merge.stats.elements_in == 0

    def test_interleave_batches_flattens_to_interleave(self):
        """For the sequential schedule the chunked interleaving flattens
        to exactly the per-element interleaving."""
        streams = _general_streams(7, 3)
        flat = [
            (element, sid)
            for chunk, sid in interleave_batches(streams, "sequential", 0, 13)
            for element in chunk
        ]
        assert flat == list(interleave(streams, "sequential", 0))

    def test_interleave_batches_preserves_per_stream_order(self):
        streams = _general_streams(9, 3)
        for schedule in SCHEDULES:
            seen = {i: [] for i in range(len(streams))}
            for chunk, sid in interleave_batches(streams, schedule, 4, 7):
                seen[sid].extend(chunk)
            for index, stream in enumerate(streams):
                assert seen[index] == list(stream)

    def test_interleave_batches_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(interleave_batches([], "sequential", 0, 0))


class TestLeadingStreamCache:
    def test_leader_tracks_max_stable_point(self):
        merge = LMergeR3()
        for index in range(3):
            merge.attach(index)
        assert merge.leading_stream() is None
        merge.process(Stable(5), 1)
        assert merge.leading_stream() == 1
        merge.process(Stable(9), 2)
        assert merge.leading_stream() == 2
        merge.process(Stable(7), 0)  # behind the leader: no change
        assert merge.leading_stream() == 2

    def test_tie_keeps_first_to_reach(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        merge.process(Stable(5), 1)
        merge.process(Stable(5), 0)
        assert merge.leading_stream() == 1

    def test_leader_detach_rescans(self):
        merge = LMergeR3()
        for index in range(3):
            merge.attach(index)
        merge.process(Stable(5), 0)
        merge.process(Stable(9), 1)
        merge.detach(1)
        assert merge.leading_stream() == 0
        merge.detach(0)
        assert merge.leading_stream() is None

    def test_batch_path_maintains_cache(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        merge.process_batch([Stable(3), Stable(6)], 1, coalesce_stables=True)
        assert merge.leading_stream() == 1
        assert merge.input_stable(1) == 6


class TestRuntimeBatchDrain:
    def _pipeline(self, count=120, capacity=None):
        from repro.operators.select import Filter
        from repro.operators.source import StreamSource

        stream = small_stream(count=count, seed=61)
        source = StreamSource(stream)
        flt = Filter(lambda p: True)
        sink = CollectorSink()
        runtime = Runtime(batch=16)
        runtime.connect(source, flt)
        runtime.connect(flt, sink, capacity=capacity)
        source.play()
        return runtime, stream, sink

    def test_batch_drain_matches_per_element(self):
        runtime, stream, sink = self._pipeline()
        runtime.run()
        assert list(sink.stream) == list(stream)

    def test_sliced_backpressure_respects_capacity(self):
        runtime, stream, sink = self._pipeline(capacity=5)
        runtime.run()
        assert list(sink.stream) == list(stream)
        bounded = [edge for edge in runtime.edges if edge.capacity is not None]
        assert bounded and all(
            edge.peak_depth <= edge.capacity for edge in bounded
        )

    def test_queued_edge_receive_batch_enforces_capacity(self):
        from repro.engine.runtime import QueueFullError

        edge = QueuedEdge(CollectorSink(), capacity=3)
        edge.receive_batch([Insert("a", 1), Insert("b", 2)])
        assert edge.depth == 2
        with pytest.raises(QueueFullError):
            edge.receive_batch([Insert("c", 3), Insert("d", 4)])

    def test_drain_delivers_one_slice(self):
        sink = CollectorSink()
        edge = QueuedEdge(sink)
        edge.receive_batch([Insert(i, i + 1) for i in range(10)])
        assert edge.drain(4) == 4
        assert [e.payload for e in sink.stream] == [0, 1, 2, 3]
        assert edge.depth == 6

    def test_output_room_probes_bounded_queues(self):
        flt_sink = CollectorSink()
        edge = QueuedEdge(flt_sink, capacity=2)
        upstream = CollectorSink()  # any operator works as a producer
        upstream.subscribe(edge)
        assert upstream.output_room() == 2
        edge.receive(Insert("a", 1))
        assert upstream.output_room() == 1
        assert upstream.has_output_room()
        edge.receive(Insert("b", 2))
        assert upstream.output_room() == 0
        assert not upstream.has_output_room()

    def test_subscribers_property_is_public_snapshot(self):
        a = CollectorSink()
        b = CollectorSink()
        a.subscribe(b, port=1)
        assert a.subscribers == ((b, 1),)
        a.unsubscribe(b)
        assert a.subscribers == ()
        assert b.upstreams == ()


class TestFragmentAdapterBatch:
    def test_receive_batch_feeds_merge(self):
        from repro.ha.hierarchy import _FragmentAdapter

        merge = LMergeR3()
        merge.attach(0)
        adapter = _FragmentAdapter(merge, 0)
        adapter.receive_batch([Insert("a", 1, 10), Stable(5)])
        assert merge.stats.inserts_in == 1
        assert merge.stats.stables_in == 1

    def test_receive_batch_after_failure_drops(self):
        from repro.ha.hierarchy import _FragmentAdapter

        merge = LMergeR3()
        merge.attach(0)
        adapter = _FragmentAdapter(merge, 0)
        merge.detach(0)
        adapter.receive_batch([Insert("a", 1, 10)])
        assert merge.stats.inserts_in == 0
