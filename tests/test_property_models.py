"""Model-based property tests for the merge indexes and key operators.

Each structure is checked against a brute-force model under randomized
operation sequences driven by hypothesis.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operator import CollectorSink
from repro.operators.cleanse import Cleanse
from repro.operators.join import TemporalJoin
from repro.structures.in2t import In2T
from repro.structures.in3t import In3T
from repro.temporal.elements import Insert, Stable
from repro.temporal.event import Event
from repro.temporal.time import INFINITY

from conftest import divergent_inputs, small_stream


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["add", "entry", "delete", "scan"]),
            st.integers(0, 8),   # vs
            st.integers(0, 3),   # payload id
            st.integers(0, 3),   # stream id
            st.integers(1, 20),  # ve / bound
        ),
        max_size=60,
    )
)
def test_in2t_matches_dict_model(ops):
    index = In2T()
    model = {}  # (vs, payload) -> {stream: ve}
    for op, vs, payload_id, stream, value in ops:
        payload = f"p{payload_id}"
        key = (vs, payload)
        if op == "add":
            if key not in model:
                node = index.add(Event(vs, payload, vs + value))
                model[key] = {}
            else:
                node = index.find(vs, payload)
            node.add_entry(stream, vs + value)
            model[key][stream] = vs + value
        elif op == "entry" and key in model:
            node = index.find(vs, payload)
            node.update_entry(stream, vs + value)
            model[key][stream] = vs + value
        elif op == "delete" and key in model:
            index.delete(index.find(vs, payload))
            del model[key]
        elif op == "scan":
            bound = value
            expected = sorted(k for k in model if k[0] < bound)
            got = [(n.vs, n.payload) for n in index.half_frozen(bound)]
            assert got == expected
    # Final coherence check.
    assert len(index) == len(model)
    for (vs, payload), entries in model.items():
        node = index.find(vs, payload)
        assert node is not None
        for stream, ve in entries.items():
            assert node.get_entry(stream) == ve


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["inc", "dec", "query"]),
            st.integers(0, 4),   # vs
            st.integers(0, 2),   # payload id
            st.integers(0, 2),   # stream id
            st.integers(1, 8),   # ve offset
        ),
        max_size=80,
    )
)
def test_in3t_matches_counter_model(ops):
    from collections import Counter

    index = In3T()
    model = {}  # (vs, payload) -> {stream: Counter(ve)}
    for op, vs, payload_id, stream, offset in ops:
        payload = f"p{payload_id}"
        key = (vs, payload)
        ve = vs + offset
        if op == "inc":
            node = index.find_or_add(Event(vs, payload, ve))
            node.increment(stream, ve)
            model.setdefault(key, {}).setdefault(stream, Counter())[ve] += 1
        elif op == "dec":
            counters = model.get(key, {}).get(stream)
            if counters and counters[ve] > 0:
                index.find(vs, payload).decrement(stream, ve)
                counters[ve] -= 1
        elif op == "query" and key in model:
            node = index.find(vs, payload)
            for sid, counters in model[key].items():
                live = +counters
                assert node.total_count(sid) == sum(live.values())
                assert node.ve_counts(sid) == sorted(live.items())
                if live:
                    assert node.max_ve(sid) == max(live)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6), disorder=st.floats(0.0, 0.6))
def test_cleanse_output_always_ordered_and_equivalent(seed, disorder):
    stream = small_stream(
        count=150, seed=seed % 23, disorder=disorder, blob=2
    )
    cleanse = Cleanse()
    sink = CollectorSink()
    cleanse.subscribe(sink)
    for element in stream:
        cleanse.receive(element, 0)
    out = sink.stream
    out.tdb()  # valid
    vs_values = [e.vs for e in out.data_elements()]
    assert vs_values == sorted(vs_values)
    assert out.tdb() == stream.tdb()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_join_matches_bruteforce_intersection(seed):
    """The join's final TDB equals the brute-force pairwise
    interval-intersection of the input TDBs."""
    rng = random.Random(seed)

    def make_side(tag):
        elements = []
        for index in range(rng.randint(1, 10)):
            vs = rng.randint(0, 30)
            ve = vs + rng.randint(1, 15)
            elements.append(Insert((tag, index), vs, ve))
        elements.append(Stable(INFINITY))
        return elements

    left, right = make_side("L"), make_side("R")
    join = TemporalJoin()
    sink = CollectorSink()
    join.subscribe(sink)
    merged = [(e, 0) for e in left] + [(e, 1) for e in right]
    rng.shuffle(merged)
    # Keep per-side element order (stables last is guaranteed by
    # construction only per side, so re-sort each side's order).
    left_iter = iter(left)
    right_iter = iter(right)
    for element, side in merged:
        actual = next(left_iter if side == 0 else right_iter)
        join.receive(actual, side)
    expected = set()
    for le in left:
        if isinstance(le, Stable):
            continue
        for re in right:
            if isinstance(re, Stable):
                continue
            vs = max(le.vs, re.vs)
            ve = min(le.ve, re.ve)
            if ve > vs:
                expected.add(Event(vs, (le.payload, re.payload), ve))
    got = set(sink.stream.tdb())
    assert got == expected


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    fail_points=st.lists(st.integers(10, 200), min_size=0, max_size=2),
)
def test_replication_random_failures_stay_correct(seed, fail_points):
    """Random pause-failures never corrupt the merged output as long as
    one replica survives."""
    from repro.ha.replica import FailureEvent, RecoveryMode, ReplicatedDeployment
    from repro.lmerge.r3 import LMergeR3

    reference = small_stream(count=250, seed=seed % 13)
    inputs = divergent_inputs(reference, n=3)
    failures = [
        FailureEvent(
            replica=1 + index,
            fail_after=point,
            down_for=40,
            mode=RecoveryMode.PAUSE,
        )
        for index, point in enumerate(fail_points[:2])
    ]
    deployment = ReplicatedDeployment(LMergeR3(), inputs, failures)
    output = deployment.run()
    assert output.tdb() == reference.tdb()
