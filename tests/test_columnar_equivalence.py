"""The columnar envelope is semantically invisible (PR6 satellite).

Three claims about :mod:`repro.engine.columnar`:

1. ``ColumnBatch`` is a faithful carrier: ``from_elements`` →
   ``to_elements`` is the identity, and the binary wire round trip
   (``encode``/``decode``) preserves every element — including mixed
   kinds, ``+inf`` lifetimes, and zero-copy slices.
2. Swapping the exchange envelope (``columnar`` vs the PR3-era
   ``object`` lists) under a sharded LMR3+ changes nothing observable:
   both outputs reconstitute to the reference TDB on the thread AND the
   process backend (the latter exercising the shared-memory rings).
3. Bounded-edge admission keeps its prefix semantics for columnar
   batches: on overflow the fitting prefix is enqueued, the raised
   :class:`QueueFullError` carries ``accepted``/``rejected`` row counts,
   and the producer resumes from ``batch.slice(accepted, len(batch))``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.engine.columnar import ColumnBatch
from repro.engine.operator import CollectorSink
from repro.engine.runtime import QueuedEdge, QueueFullError
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.lmerge.shard import shard
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import INFINITY
from repro.theory.equivalence import equivalent_prefixes

from conftest import divergent_inputs, small_stream

# ----------------------------------------------------------------------
# Element strategies: mixed kinds, int and infinite timestamps, payload
# types spanning the pickle arena's common cases.
# ----------------------------------------------------------------------

_payloads = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.text(max_size=4),
    st.tuples(st.integers(min_value=0, max_value=9), st.text(max_size=2)),
)
_vs = st.integers(min_value=0, max_value=1000)
_ve = st.one_of(st.integers(min_value=1, max_value=2000), st.just(INFINITY))

_inserts = st.builds(Insert, _payloads, _vs, _ve)
_adjusts = st.builds(Adjust, _payloads, _vs, _ve, _ve)
_stables = st.builds(Stable, st.integers(min_value=0, max_value=2000))

_element_lists = st.lists(
    st.one_of(_inserts, _adjusts, _stables), max_size=60
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(elements=_element_lists)
    def test_from_elements_to_elements_identity(self, elements):
        batch = ColumnBatch.from_elements(elements)
        assert len(batch) == len(elements)
        assert list(batch.to_elements()) == elements

    @settings(max_examples=60, deadline=None)
    @given(elements=_element_lists)
    def test_wire_round_trip_preserves_elements(self, elements):
        batch = ColumnBatch.from_elements(elements)
        decoded = ColumnBatch.decode(batch.encode())
        assert decoded.n == batch.n
        assert decoded.kinds == batch.kinds
        # Float64 round trips may return 5.0 for 5; element __eq__ treats
        # them as equal, which is the documented contract.
        assert list(decoded.to_elements()) == elements

    @settings(max_examples=40, deadline=None)
    @given(
        elements=_element_lists,
        cut=st.integers(min_value=0, max_value=60),
    )
    def test_slices_round_trip_on_the_wire(self, elements, cut):
        batch = ColumnBatch.from_elements(elements)
        cut = min(cut, batch.n)
        for piece in (batch.slice(0, cut), batch.slice(cut, batch.n)):
            decoded = ColumnBatch.decode(piece.encode())
            assert list(decoded.to_elements()) == list(piece.to_elements())

    def test_double_encode_from_decoded_arena(self):
        """Re-encoding an arena-backed batch (decode → slice → encode)
        rebases the payload offsets rather than re-pickling."""
        elements = [Insert("a", 1, 5), Stable(2), Adjust("b", 3, 9, 7)]
        decoded = ColumnBatch.decode(
            ColumnBatch.from_elements(elements).encode()
        )
        again = ColumnBatch.decode(decoded.slice(1, 3).encode())
        assert list(again.to_elements()) == elements[1:]

    def test_typecode_selection(self):
        ints = ColumnBatch.from_elements([Insert("p", 1, 2), Stable(3)])
        assert ints.tcode == "q"
        inf = ColumnBatch.from_elements([Insert("p", 1, INFINITY)])
        assert inf.tcode == "d"
        assert inf.to_elements()[0].ve == INFINITY
        wide = ColumnBatch.from_elements([Insert("p", 1, 2**70)])
        assert wide.tcode == "d"  # beyond int64: documented float fallback

    def test_take_materializes_selected_rows(self):
        elements = [Insert(i, i, i + 10) for i in range(8)]
        batch = ColumnBatch.from_elements(elements)
        picked = batch.take([6, 1, 3])
        assert list(picked.to_elements()) == [
            elements[6], elements[1], elements[3],
        ]


# ----------------------------------------------------------------------
# Envelope equivalence: columnar vs object exchange under sharded LMR3+.
# ----------------------------------------------------------------------

BACKENDS = ["thread", "process"]


class TestEnvelopeEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("variant", [LMergeR3, LMergeR4])
    def test_columnar_matches_object_tdb(self, backend, variant):
        reference = small_stream(count=200, seed=11, disorder=0.3)
        inputs = divergent_inputs(reference, n=2)
        outputs = {}
        for envelope in ("columnar", "object"):
            plan = shard(
                variant, 3, backend=backend, envelope=envelope
            )
            outputs[envelope] = plan.merge(inputs, schedule="round_robin")
        columnar, obj = outputs["columnar"], outputs["object"]
        assert columnar.tdb() == obj.tdb() == reference.tdb()
        assert equivalent_prefixes(
            list(columnar), len(columnar), list(obj), len(obj)
        )

    @settings(max_examples=6, deadline=None)
    @given(
        num_shards=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=30),
        disorder=st.sampled_from([0.0, 0.2, 0.5]),
    )
    def test_columnar_serial_equivalence_random(
        self, num_shards, seed, disorder
    ):
        """Randomized sweep on the cheap backend: the columnar plan's TDB
        matches the unsharded object-path merge for random shard counts
        and disorder levels."""
        reference = small_stream(count=150, seed=seed, disorder=disorder)
        inputs = divergent_inputs(reference, n=2)
        plan = shard(
            LMergeR3, num_shards, backend="serial", envelope="columnar"
        )
        sharded_out = plan.merge(inputs, schedule="round_robin")
        unsharded_out = LMergeR3().merge(inputs, schedule="round_robin")
        assert sharded_out.tdb() == unsharded_out.tdb() == reference.tdb()

    def test_custom_key_fn_columnar(self):
        """A non-identity key function exercises the per-row hash path in
        partition_columns rather than the cached key_hashes column."""
        reference = small_stream(count=120, seed=3, disorder=0.25)
        inputs = divergent_inputs(reference, n=2)
        plan = shard(
            LMergeR3,
            4,
            backend="serial",
            envelope="columnar",
            key_fn=lambda payload: hash(payload) % 7,
        )
        output = plan.merge(inputs)
        assert output.tdb() == reference.tdb()


# ----------------------------------------------------------------------
# Bounded-edge admission for columnar batches.
# ----------------------------------------------------------------------


def _edge(capacity):
    sink = CollectorSink(name="sink")
    return QueuedEdge(sink, capacity=capacity, name="edge"), sink


class TestColumnarAdmission:
    def test_overflow_admits_prefix_and_reports_counts(self):
        edge, sink = _edge(capacity=5)
        elements = [Insert(i, i, i + 1) for i in range(8)]
        batch = ColumnBatch.from_elements(elements)
        with pytest.raises(QueueFullError) as err:
            edge.receive_columns(batch)
        assert err.value.accepted == 5
        assert err.value.rejected == 3
        assert err.value.accepted + err.value.rejected == len(batch)
        assert edge.depth == 5
        edge.drain(100)
        assert list(sink.stream) == elements[:5]

    def test_producer_resumes_from_accepted(self):
        edge, sink = _edge(capacity=4)
        elements = [Insert(i, i, i + 1) for i in range(10)]
        batch = ColumnBatch.from_elements(elements)
        delivered = 0
        while delivered < len(batch):
            rest = batch.slice(delivered, len(batch))
            try:
                edge.receive_columns(rest)
                delivered = len(batch)
            except QueueFullError as err:
                delivered += err.accepted
            edge.drain(100)
        assert list(sink.stream) == elements

    def test_full_edge_accepts_nothing(self):
        edge, _ = _edge(capacity=2)
        edge.receive_columns(
            ColumnBatch.from_elements([Insert("a", 1, 2), Insert("b", 2, 3)])
        )
        with pytest.raises(QueueFullError) as err:
            edge.receive_columns(
                ColumnBatch.from_elements([Insert("c", 3, 4)])
            )
        assert err.value.accepted == 0
        assert err.value.rejected == 1
        assert edge.depth == 2

    def test_admission_matches_object_path_accounting(self):
        """receive_columns leaves the same observable edge state as
        receive_batch of the same slice (counters included)."""
        elements = [Insert(i, i, i + 2) for i in range(7)]
        col_edge, col_sink = _edge(capacity=4)
        obj_edge, obj_sink = _edge(capacity=4)
        with pytest.raises(QueueFullError) as col_err:
            col_edge.receive_columns(ColumnBatch.from_elements(elements))
        with pytest.raises(QueueFullError) as obj_err:
            obj_edge.receive_batch(elements)
        assert col_err.value.accepted == obj_err.value.accepted
        assert col_err.value.rejected == obj_err.value.rejected
        assert col_edge.depth == obj_edge.depth
        assert col_edge.elements_in == obj_edge.elements_in
        assert col_edge.enqueued == obj_edge.enqueued
        col_edge.drain(100)
        obj_edge.drain(100)
        assert list(col_sink.stream) == list(obj_sink.stream)

    def test_partial_drain_slices_batch(self):
        """A drain budget smaller than the queued batch delivers a prefix
        slice and leaves the remainder columnar in the queue."""
        edge, sink = _edge(capacity=None)
        elements = [Insert(i, i, i + 1) for i in range(6)] + [Stable(9)]
        edge.receive_columns(ColumnBatch.from_elements(elements))
        assert edge.drain(4) == 4
        assert list(sink.stream) == elements[:4]
        assert edge.depth == 3
        assert edge.drain(10) == 3
        assert list(sink.stream) == elements
        assert edge.depth == 0
