"""Tests for the discrete-event simulation substrate."""

import random

import pytest

from repro.engine.simulation import (
    BurstyDelay,
    CongestionWindows,
    FixedLag,
    NoDelay,
    SimulatedChannel,
    SimulatedPlan,
    Simulation,
    timed_schedule,
)
from repro.lmerge.feedback import FeedbackSignal
from repro.temporal.elements import Insert, Stable


class TestSimulation:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        log = []
        sim.schedule_at(5.0, lambda: log.append("b"))
        sim.schedule_at(1.0, lambda: log.append("a"))
        sim.schedule_at(9.0, lambda: log.append("c"))
        assert sim.run() == 3
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_ties_break_by_scheduling_order(self):
        sim = Simulation()
        log = []
        sim.schedule_at(1.0, lambda: log.append("first"))
        sim.schedule_at(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_run_until(self):
        sim = Simulation()
        log = []
        sim.schedule_at(1.0, lambda: log.append(1))
        sim.schedule_at(5.0, lambda: log.append(5))
        sim.run(until=3.0)
        assert log == [1]
        assert sim.now == 3.0
        sim.run()
        assert log == [1, 5]

    def test_relative_schedule(self):
        sim = Simulation()
        sim.schedule_at(2.0, lambda: sim.schedule(3.0, lambda: None))
        sim.run()
        assert sim.now == 5.0

    def test_past_scheduling_rejected(self):
        sim = Simulation()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_actions_can_schedule_more(self):
        sim = Simulation()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                sim.schedule(1.0, tick)

        sim.schedule_at(0.0, tick)
        sim.run()
        assert count[0] == 10


class TestDelayModels:
    def test_no_delay(self):
        assert NoDelay().delay(Insert("a", 1), 0.0, random.Random(0)) == 0.0

    def test_fixed_lag(self):
        assert FixedLag(3.5).delay(Insert("a", 1), 0.0, random.Random(0)) == 3.5

    def test_bursty_mostly_zero(self):
        model = BurstyDelay(probability=0.01, mean=20, std=5)
        rng = random.Random(1)
        delays = [model.delay(Insert("a", 1), 0.0, rng) for _ in range(2000)]
        stalls = [d for d in delays if d > 0]
        assert 2 <= len(stalls) <= 60
        assert all(5 < d < 40 for d in stalls)

    def test_congestion_windows(self):
        model = CongestionWindows(windows=[(10.0, 20.0)], mean=5, std=0.1)
        rng = random.Random(2)
        assert model.delay(Insert("a", 1), 5.0, rng) == 0.0
        assert model.delay(Insert("a", 1), 15.0, rng) > 1.0
        assert model.delay(Insert("a", 1), 20.0, rng) == 0.0


class TestChannel:
    def test_fifo_preserved_under_delay(self):
        """A stalled element holds everything behind it (queue build-up)."""
        sim = Simulation()
        received = []

        class StallSecond(NoDelay):
            def __init__(self):
                self.count = 0

            def delay(self, element, now, rng):
                self.count += 1
                return 10.0 if self.count == 2 else 0.0

        channel = SimulatedChannel(
            sim, lambda e: received.append((sim.now, e.payload)), StallSecond()
        )
        channel.feed([(0.0, Insert("a", 1)), (1.0, Insert("b", 2)), (2.0, Insert("c", 3))])
        sim.run()
        times = [t for t, _ in received]
        payloads = [p for _, p in received]
        assert payloads == ["a", "b", "c"]
        assert times == [0.0, 11.0, 11.0]  # c queued behind b

    def test_delivery_counts(self):
        sim = Simulation()
        channel = SimulatedChannel(sim, lambda e: None)
        channel.feed(timed_schedule([Insert("a", 1), Stable(2)], rate=10.0))
        sim.run()
        assert channel.delivered == 2


class TestTimedSchedule:
    def test_constant_rate(self):
        schedule = timed_schedule([Insert("a", 1), Insert("b", 2)], rate=2.0)
        assert [t for t, _ in schedule] == [0.0, 0.5]

    def test_start_offset(self):
        schedule = timed_schedule([Insert("a", 1)], rate=1.0, start=9.0)
        assert schedule[0][0] == 9.0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            timed_schedule([], rate=0)


class TestSimulatedPlan:
    def test_serial_queueing(self):
        sim = Simulation()
        done = []
        plan = SimulatedPlan(
            sim, lambda e: done.append(sim.now), service_cost=lambda e: 2.0
        )
        sim.schedule_at(0.0, lambda: plan.submit(Insert("a", 1)))
        sim.schedule_at(0.0, lambda: plan.submit(Insert("b", 2)))
        sim.run()
        assert done == [2.0, 4.0]  # second waits for the server

    def test_idle_server_starts_immediately(self):
        sim = Simulation()
        done = []
        plan = SimulatedPlan(
            sim, lambda e: done.append(sim.now), service_cost=lambda e: 1.0
        )
        sim.schedule_at(0.0, lambda: plan.submit(Insert("a", 1)))
        sim.schedule_at(10.0, lambda: plan.submit(Insert("b", 2)))
        sim.run()
        assert done == [1.0, 11.0]

    def test_fast_forward_skips_covered_elements(self):
        sim = Simulation()
        plan = SimulatedPlan(
            sim, lambda e: None, service_cost=lambda e: 5.0
        )
        plan.on_feedback(FeedbackSignal(100))
        sim.schedule_at(0.0, lambda: plan.submit(Insert("a", 1, 50)))
        sim.run()
        assert plan.skipped == 1
        assert plan.completion_time == 0.0

    def test_stables_never_skipped_but_free(self):
        sim = Simulation()
        delivered = []
        plan = SimulatedPlan(
            sim, lambda e: delivered.append(e), service_cost=lambda e: 5.0
        )
        plan.on_feedback(FeedbackSignal(100))
        sim.schedule_at(0.0, lambda: plan.submit(Stable(50)))
        sim.run()
        assert delivered == [Stable(50)]
        assert plan.skipped == 0

    def test_horizon_monotone(self):
        sim = Simulation()
        plan = SimulatedPlan(sim, lambda e: None, service_cost=lambda e: 1.0)
        plan.on_feedback(FeedbackSignal(50))
        plan.on_feedback(FeedbackSignal(20))  # regression ignored
        assert plan.horizon == 50

    def test_busy_time_accumulates(self):
        sim = Simulation()
        plan = SimulatedPlan(sim, lambda e: None, service_cost=lambda e: 2.5)
        sim.schedule_at(0.0, lambda: plan.submit(Insert("a", 1)))
        sim.schedule_at(0.0, lambda: plan.submit(Insert("b", 2)))
        sim.run()
        assert plan.busy_time == 5.0
        assert plan.completed == 2
