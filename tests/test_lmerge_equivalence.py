"""Cross-algorithm property tests: every LMerge algorithm, fed inputs
satisfying its restriction, produces a logically equivalent output.

These are the repository's strongest correctness tests: hypothesis drives
random logical histories through random physical presentations, random
interleavings, and random punctuation cadences.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r3_naive import LMergeR3Naive
from repro.lmerge.r4 import LMergeR4
from repro.streams.divergence import diverge
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Insert, Stable
from repro.temporal.time import INFINITY


def generate_reference(seed, count=120, disorder=0.2, stable_freq=0.08):
    config = GeneratorConfig(
        count=count,
        seed=seed,
        disorder=disorder,
        stable_freq=stable_freq,
        payload_blob_bytes=2,
        event_duration=60,
    )
    return StreamGenerator(config).generate()


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_inputs=st.integers(1, 4),
    schedule=st.sampled_from(["round_robin", "sequential", "random"]),
    speculate=st.floats(0.0, 0.8),
    stable_keep=st.floats(0.2, 1.0),
)
def test_r3_always_equivalent(seed, n_inputs, schedule, speculate, stable_keep):
    reference = generate_reference(seed % 17)
    inputs = [
        diverge(
            reference,
            seed=seed + i,
            speculate_fraction=speculate,
            stable_keep_probability=stable_keep,
        )
        for i in range(n_inputs)
    ]
    merge = LMergeR3()
    output = merge.merge(inputs, schedule=schedule, seed=seed)
    assert output.tdb() == reference.tdb()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_inputs=st.integers(1, 4),
    schedule=st.sampled_from(["round_robin", "sequential", "random"]),
    speculate=st.floats(0.0, 0.8),
)
def test_r4_always_equivalent(seed, n_inputs, schedule, speculate):
    reference = generate_reference(seed % 13)
    inputs = [
        diverge(reference, seed=seed + i, speculate_fraction=speculate)
        for i in range(n_inputs)
    ]
    merge = LMergeR4()
    output = merge.merge(inputs, schedule=schedule, seed=seed)
    assert output.tdb() == reference.tdb()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_inputs=st.integers(1, 4),
    schedule=st.sampled_from(["round_robin", "sequential", "random"]),
)
def test_naive_matches_r3plus(seed, n_inputs, schedule):
    """LMR3- and LMR3+ are different implementations of the same spec."""
    reference = generate_reference(seed % 11)
    inputs = [
        diverge(reference, seed=seed + i, speculate_fraction=0.4)
        for i in range(n_inputs)
    ]
    plus = LMergeR3().merge(inputs, schedule=schedule, seed=seed)
    naive = LMergeR3Naive().merge(inputs, schedule=schedule, seed=seed)
    assert plus.tdb() == naive.tdb() == reference.tdb()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6), n_inputs=st.integers(1, 4))
def test_r0_on_strict_streams(seed, n_inputs):
    config = GeneratorConfig(
        count=100,
        seed=seed % 19,
        disorder=0.0,
        min_gap=1,
        payload_blob_bytes=2,
        stable_freq=0.05,
    )
    reference = StreamGenerator(config).generate()
    merge = LMergeR0()
    output = merge.merge([reference] * n_inputs, schedule="random", seed=seed)
    assert output.tdb() == reference.tdb()


def _shuffle_same_vs_batches(reference, rng):
    """Permute elements only *within* equal-Vs insert runs — exactly the
    R2 freedom (order among elements with the same Vs differs across
    inputs, Vs order itself is preserved)."""
    out = []
    batch = []
    batch_vs = None
    for element in reference:
        if isinstance(element, Insert) and element.vs == batch_vs:
            batch.append(element)
            continue
        rng.shuffle(batch)
        out.extend(batch)
        batch = []
        batch_vs = None
        if isinstance(element, Insert):
            batch = [element]
            batch_vs = element.vs
        else:
            out.append(element)
    rng.shuffle(batch)
    out.extend(batch)
    return PhysicalStream(out)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6), n_inputs=st.integers(2, 4))
def test_r2_reordered_same_vs(seed, n_inputs):
    """R2 inputs: identical logical batches per Vs, per-input shuffles."""
    rng = random.Random(seed)
    elements = []
    vs = 0
    for batch in range(12):
        vs += rng.randint(1, 5)
        for item in range(rng.randint(1, 4)):
            elements.append(Insert((batch, item), vs, vs + 10))
        if rng.random() < 0.4:
            elements.append(Stable(vs))
    elements.append(Stable(INFINITY))
    reference = PhysicalStream(elements)
    inputs = [
        _shuffle_same_vs_batches(reference, random.Random(seed + i))
        for i in range(n_inputs)
    ]
    merge = LMergeR2()
    output = merge.merge(inputs, schedule="random", seed=seed)
    assert output.tdb() == reference.tdb()


@pytest.mark.parametrize(
    "algorithm",
    [LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR3Naive, LMergeR4],
    ids=lambda cls: cls.algorithm,
)
class TestHierarchy:
    """Every algorithm handles inputs from any *stronger* restriction."""

    def test_r0_inputs_accepted_by_all(self, algorithm):
        config = GeneratorConfig(
            count=200, seed=4, disorder=0.0, min_gap=1, payload_blob_bytes=2
        )
        reference = StreamGenerator(config).generate()
        merge = algorithm()
        output = merge.merge([reference, reference], schedule="round_robin")
        assert output.tdb() == reference.tdb()

    def test_identical_replicas(self, algorithm):
        config = GeneratorConfig(
            count=200, seed=5, disorder=0.0, min_gap=1, payload_blob_bytes=2
        )
        reference = StreamGenerator(config).generate()
        merge = algorithm()
        output = merge.merge([reference] * 3, schedule="random", seed=9)
        assert output.tdb() == reference.tdb()


class TestGeneralBeatsSpecialOnWeakInputs:
    """Sanity check of the restriction boundaries: R0 *mis-merges* inputs
    that only satisfy R2 (it deduplicates by Vs alone)."""

    def test_r0_loses_same_vs_events(self):
        stream = PhysicalStream(
            [Insert("X", 5), Insert("Y", 5), Stable(INFINITY)]
        )
        output = LMergeR0().merge([stream, stream])
        assert len(output.tdb()) == 1  # Y was (incorrectly for R2) dropped

    def test_r2_keeps_them(self):
        stream = PhysicalStream(
            [Insert("X", 5), Insert("Y", 5), Stable(INFINITY)]
        )
        output = LMergeR2().merge([stream, stream])
        assert len(output.tdb()) == 2
