"""StateStore: the log-structured store under the durable merge state.

Covers the crash-safety story record by record: CRC'd appends, last
record wins across reopen, torn-tail truncation (a kill mid-append),
mid-log corruption detection, segment rotation, compaction (including a
simulated crash *during* compaction, resolved by segment-id shadowing),
tombstones, and the ``state_store_bytes`` gauge.
"""

import os
import pickle

import pytest

from repro.obs.registry import MetricRegistry
from repro.resilience.store import (
    CorruptSegmentError,
    StateStore,
    StateStoreError,
    _segment_path,
)


def test_put_get_round_trip(tmp_path):
    with StateStore(str(tmp_path)) as store:
        store.put("alpha", b"one")
        store.put(b"beta", b"two")
        assert store.get("alpha") == b"one"
        assert store.get(b"beta") == b"two"
        assert store.get("missing") is None
        assert "alpha" in store
        assert len(store) == 2
        assert list(store.keys()) == [b"alpha", b"beta"]


def test_last_record_wins_across_reopen(tmp_path):
    store = StateStore(str(tmp_path))
    for value in (b"v1", b"v2", b"v3"):
        store.put("key", value)
    store.sync()
    store.close()
    with StateStore(str(tmp_path)) as reopened:
        assert reopened.get("key") == b"v3"
        assert len(reopened) == 1


def test_kill_and_reopen_without_close(tmp_path):
    """After sync(), a second open over the same directory sees the
    identical index even though the writer never closed — the kill -9
    contract."""
    writer = StateStore(str(tmp_path))
    writer.put("snapshot", pickle.dumps({"state": [1, 2, 3]}))
    writer.put("extra", b"x" * 100)
    writer.sync()
    reader = StateStore(str(tmp_path))
    assert pickle.loads(reader.get("snapshot")) == {"state": [1, 2, 3]}
    assert reader.get("extra") == b"x" * 100
    reader.close()
    writer.close()


def test_tombstones_survive_reopen(tmp_path):
    store = StateStore(str(tmp_path))
    store.put("keep", b"yes")
    store.put("drop", b"no")
    store.delete("drop")
    store.delete("never-existed")  # no-op, no tombstone
    store.sync()
    store.close()
    with StateStore(str(tmp_path)) as reopened:
        assert reopened.get("keep") == b"yes"
        assert reopened.get("drop") is None
        assert len(reopened) == 1


def test_torn_tail_is_truncated_on_reopen(tmp_path):
    store = StateStore(str(tmp_path))
    store.put("whole", b"record")
    store.sync()
    path = _segment_path(str(tmp_path), store._active_id)
    store.close()
    with open(path, "ab") as handle:
        handle.write(b"\x01\x02torn-partial-append")
    with StateStore(str(tmp_path)) as reopened:
        assert reopened.truncated_bytes > 0
        assert reopened.get("whole") == b"record"
        # The next append lands on a whole-record boundary.
        reopened.put("after", b"ok")
        reopened.sync()
    with StateStore(str(tmp_path)) as again:
        assert again.get("whole") == b"record"
        assert again.get("after") == b"ok"
        assert again.truncated_bytes == 0


def test_mid_log_corruption_raises(tmp_path):
    store = StateStore(str(tmp_path))
    store.put("early", b"x" * 64)
    store.rotate()  # seal segment 1; damage there is NOT a torn tail
    store.put("late", b"y" * 64)
    store.sync()
    first = _segment_path(str(tmp_path), 1)
    store.close()
    with open(first, "r+b") as handle:
        handle.seek(10)
        handle.write(b"\xff\xff\xff")
    with pytest.raises(CorruptSegmentError):
        StateStore(str(tmp_path))


def test_rotation_splits_segments(tmp_path):
    with StateStore(str(tmp_path), segment_bytes=4096) as store:
        for i in range(40):
            store.put(f"key-{i}", bytes(256))
        assert store.segments > 1
        for i in range(40):
            assert store.get(f"key-{i}") == bytes(256)


def test_compaction_reclaims_and_preserves(tmp_path):
    store = StateStore(str(tmp_path))
    for round_ in range(20):
        store.put("hot", bytes([round_]) * 512)
    store.put("cold", b"untouched")
    store.delete("hot2") if "hot2" in store else store.put("hot2", b"dead")
    store.delete("hot2")
    store.sync()
    before = store.total_bytes
    reclaimed = store.compact()
    assert reclaimed > 0
    assert store.total_bytes < before
    assert store.get("hot") == bytes([19]) * 512
    assert store.get("cold") == b"untouched"
    assert store.get("hot2") is None
    store.close()
    with StateStore(str(tmp_path)) as reopened:
        assert reopened.get("hot") == bytes([19]) * 512
        assert reopened.get("cold") == b"untouched"


def test_crash_mid_compaction_resolves_by_segment_id(tmp_path):
    """A reopen that sees both the stale segments and the compacted one
    (crash after the new segment flushed, before the unlinks) must
    resolve every key to the compacted copy — higher id wins."""
    store = StateStore(str(tmp_path))
    store.put("key", b"old")
    store.sync()
    stale = _segment_path(str(tmp_path), store._active_id)
    with open(stale, "rb") as handle:
        stale_bytes = handle.read()
    store.put("key", b"new")
    store.sync()
    store.compact()
    store.close()
    # Resurrect the pre-compaction segment under its old (lower) id.
    with open(_segment_path(str(tmp_path), 1), "wb") as handle:
        handle.write(stale_bytes)
    with StateStore(str(tmp_path)) as reopened:
        assert reopened.get("key") == b"new"


def test_maybe_compact_thresholds(tmp_path):
    with StateStore(str(tmp_path)) as store:
        store.put("a", b"x" * 100)
        assert store.maybe_compact(min_dead_bytes=1 << 20) == 0
        for _ in range(50):
            store.put("a", b"y" * 100)
        assert store.dead_bytes > 1000
        assert store.maybe_compact(min_dead_bytes=1000) > 0
        assert store.get("a") == b"y" * 100


def test_accounting_and_gauge(tmp_path):
    registry = MetricRegistry()
    with StateStore(
        str(tmp_path), registry=registry, name="shard-7"
    ) as store:
        store.put("k", b"v" * 64)
        assert store.live_bytes == 64
        assert store.total_bytes > 64
        gauge = registry.gauge("state_store_bytes", {"store": "shard-7"})
        assert gauge.value == store.total_bytes


def test_closed_store_refuses_io(tmp_path):
    store = StateStore(str(tmp_path))
    store.put("k", b"v")
    store.close()
    store.close()  # idempotent
    with pytest.raises(StateStoreError):
        store.get("k")
    with pytest.raises(StateStoreError):
        store.put("k", b"v2")


def test_large_values_round_trip(tmp_path):
    blob = os.urandom(300_000)
    with StateStore(str(tmp_path), segment_bytes=65536) as store:
        store.put("big", blob)
        assert store.get("big") == blob
    with StateStore(str(tmp_path)) as reopened:
        assert reopened.get("big") == blob
