"""Tests for the windowed aggregates and Cleanse."""

import pytest

from repro.engine.operator import CollectorSink
from repro.operators.aggregate import (
    AggregateMode,
    GroupedCount,
    TopK,
    WindowedCount,
)
from repro.operators.cleanse import Cleanse
from repro.streams.properties import measure_properties
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Event
from repro.temporal.tdb import TDB
from repro.temporal.time import INFINITY

from conftest import small_stream


def run_through(operator, elements):
    sink = CollectorSink()
    operator.subscribe(sink)
    for element in elements:
        operator.receive(element, 0)
    return sink.stream


class TestWindowedCountConservative:
    def test_counts_per_window(self):
        out = run_through(
            WindowedCount(window=10),
            [
                Insert("a", 1, 5),
                Insert("b", 3, 8),
                Insert("c", 12, 20),
                Stable(INFINITY),
            ],
        )
        assert out.tdb() == TDB([Event(0, 2, 10), Event(10, 1, 20)])

    def test_nothing_emitted_before_window_closes(self):
        out = run_through(
            WindowedCount(window=10), [Insert("a", 1, 5), Stable(9)]
        )
        assert out.count_inserts() == 0

    def test_window_closes_when_stable_passes_end(self):
        out = run_through(
            WindowedCount(window=10), [Insert("a", 1, 5), Stable(10)]
        )
        assert out.count_inserts() == 1

    def test_output_stable_capped_to_window_start(self):
        out = run_through(WindowedCount(window=10), [Insert("a", 1, 5), Stable(17)])
        assert out.max_stable() == 10

    def test_input_cancel_decrements(self):
        out = run_through(
            WindowedCount(window=10),
            [
                Insert("a", 1, 5),
                Insert("b", 2, 5),
                Adjust("a", 1, 5, 1),
                Stable(INFINITY),
            ],
        )
        assert out.tdb() == TDB([Event(0, 1, 10)])

    def test_strictly_increasing_output(self):
        reference = small_stream(count=500, seed=51, disorder=0.3)
        out = run_through(WindowedCount(window=100), reference)
        properties = measure_properties(out)
        assert properties.strictly_increasing
        assert properties.insert_only


class TestWindowedCountAggressive:
    def test_running_count_with_revisions(self):
        out = run_through(
            WindowedCount(window=10, mode=AggregateMode.AGGRESSIVE),
            [Insert("a", 1, 5), Insert("b", 3, 8), Stable(INFINITY)],
        )
        elements = list(out)
        # First event: insert(1).  Second: cancel(1), insert(2).
        assert elements[0] == Insert(1, 0, 10)
        assert elements[1] == Adjust(1, 0, 10, 0)
        assert elements[2] == Insert(2, 0, 10)
        assert out.tdb() == TDB([Event(0, 2, 10)])

    def test_aggressive_equals_conservative_logically(self):
        reference = small_stream(count=600, seed=52, disorder=0.25)
        conservative = run_through(WindowedCount(window=100), reference)
        aggressive = run_through(
            WindowedCount(window=100, mode=AggregateMode.AGGRESSIVE), reference
        )
        assert conservative.tdb() == aggressive.tdb()

    def test_aggressive_output_is_valid_stream(self):
        reference = small_stream(count=600, seed=53, disorder=0.4)
        out = run_through(
            WindowedCount(window=100, mode=AggregateMode.AGGRESSIVE), reference
        )
        out.tdb()  # strict

    def test_aggressive_emits_before_stable(self):
        out = run_through(
            WindowedCount(window=10, mode=AggregateMode.AGGRESSIVE),
            [Insert("a", 1, 5)],
        )
        assert out.count_inserts() == 1  # no punctuation needed

    def test_memory_tracks_open_windows(self):
        operator = WindowedCount(window=10)
        run_through(operator, [Insert("a", 1, 5), Insert("b", 15, 20)])
        assert operator.memory_bytes() > 0
        operator.on_stable(INFINITY, 0)
        assert operator.memory_bytes() == 0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedCount(window=0)


class TestGroupedCount:
    def test_per_group_counts(self):
        out = run_through(
            GroupedCount(window=10, key_fn=lambda p: p[0]),
            [
                Insert(("g1", 1), 1, 5),
                Insert(("g1", 2), 2, 5),
                Insert(("g2", 3), 3, 5),
                Stable(INFINITY),
            ],
        )
        assert out.tdb() == TDB([Event(0, ("g1", 2), 10), Event(0, ("g2", 1), 10)])

    def test_same_vs_multiple_groups(self):
        out = run_through(
            GroupedCount(window=10, key_fn=lambda p: p[0]),
            [Insert(("a", 1), 1, 5), Insert(("b", 1), 2, 5), Stable(INFINITY)],
        )
        inserts = [e for e in out if isinstance(e, Insert)]
        assert len({e.vs for e in inserts}) == 1  # both share the window Vs

    def test_aggressive_grouped_equals_conservative(self):
        reference = small_stream(count=500, seed=54, disorder=0.3)
        conservative = run_through(
            GroupedCount(window=100, key_fn=lambda p: p[0] % 5), reference
        )
        aggressive = run_through(
            GroupedCount(
                window=100,
                key_fn=lambda p: p[0] % 5,
                mode=AggregateMode.AGGRESSIVE,
            ),
            reference,
        )
        assert conservative.tdb() == aggressive.tdb()

    def test_cancel_adjusts_group(self):
        out = run_through(
            GroupedCount(window=10, key_fn=lambda p: p[0]),
            [
                Insert(("g", 1), 1, 5),
                Adjust(("g", 1), 1, 5, 1),
                Stable(INFINITY),
            ],
        )
        assert len(out.tdb()) == 0


class TestTopK:
    def test_rank_order_output(self):
        out = run_through(
            TopK(window=10, k=2, score_fn=lambda p: p[1]),
            [
                Insert(("a", 10), 1, 5),
                Insert(("b", 30), 2, 5),
                Insert(("c", 20), 3, 5),
                Stable(INFINITY),
            ],
        )
        inserts = [e for e in out if isinstance(e, Insert)]
        assert [e.payload for e in inserts] == [
            (1, ("b", 30)),
            (2, ("c", 20)),
        ]

    def test_fewer_than_k(self):
        out = run_through(
            TopK(window=10, k=5, score_fn=lambda p: p[1]),
            [Insert(("a", 10), 1, 5), Stable(INFINITY)],
        )
        assert out.count_inserts() == 1

    def test_deterministic_under_score_ties(self):
        elements = [
            Insert(("x", 10), 1, 5),
            Insert(("y", 10), 2, 5),
            Stable(INFINITY),
        ]
        first = run_through(TopK(window=10, k=2, score_fn=lambda p: p[1]), elements)
        second = run_through(
            TopK(window=10, k=2, score_fn=lambda p: p[1]), list(reversed(elements[:2])) + [Stable(INFINITY)]
        )
        assert list(first) == list(second)

    def test_cancel_removes_candidate(self):
        out = run_through(
            TopK(window=10, k=1, score_fn=lambda p: p[1]),
            [
                Insert(("a", 99), 1, 5),
                Adjust(("a", 99), 1, 5, 1),
                Insert(("b", 10), 2, 5),
                Stable(INFINITY),
            ],
        )
        inserts = [e for e in out if isinstance(e, Insert)]
        assert [e.payload for e in inserts] == [(1, ("b", 10))]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopK(window=10, k=0, score_fn=lambda p: 0)


class TestCleanse:
    def test_orders_disordered_input(self):
        reference = small_stream(count=500, seed=55, disorder=0.5)
        out = run_through(Cleanse(), reference)
        assert measure_properties(out).ordered
        assert measure_properties(out).insert_only

    def test_logical_equivalence(self):
        reference = small_stream(count=500, seed=55, disorder=0.5)
        out = run_through(Cleanse(), reference)
        assert out.tdb() == reference.tdb()

    def test_absorbs_revisions(self):
        out = run_through(
            Cleanse(),
            [
                Insert("a", 1, 10),
                Adjust("a", 1, 10, 5),
                Stable(INFINITY),
            ],
        )
        assert list(out.data_elements()) == [Insert("a", 1, 5)]

    def test_cancelled_event_never_released(self):
        out = run_through(
            Cleanse(),
            [Insert("a", 1, 10), Adjust("a", 1, 10, 1), Stable(INFINITY)],
        )
        assert out.count_inserts() == 0

    def test_holds_until_fully_frozen(self):
        operator = Cleanse()
        out = run_through(operator, [Insert("a", 1, 10), Stable(5)])
        assert out.count_inserts() == 0  # Ve=10 not yet frozen
        assert operator.buffered == 1
        operator.on_stable(11, 0)
        assert operator.buffered == 0

    def test_long_lived_event_blocks_later_releases(self):
        """Strict order: a frozen event may not jump an unfrozen
        smaller-Vs event."""
        operator = Cleanse()
        sink = CollectorSink()
        operator.subscribe(sink)
        operator.receive(Insert("long", 1, 100), 0)
        operator.receive(Insert("short", 5, 10), 0)
        operator.receive(Stable(50), 0)
        # "short" is frozen but must wait for "long" (Vs=1, unfrozen).
        assert sink.stream.count_inserts() == 0
        assert sink.stream.max_stable() <= 1
        operator.receive(Stable(101), 0)
        payloads = [e.payload for e in sink.stream.data_elements()]
        assert payloads == ["long", "short"]
        sink.stream.tdb()  # output is a valid stream

    def test_memory_grows_with_buffer(self):
        operator = Cleanse()
        run_through(
            operator,
            [Insert("x" * 100, i, i + 50) for i in range(20)],
        )
        assert operator.memory_bytes() > 20 * 100
        assert operator.peak_buffered == 20
