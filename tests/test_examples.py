"""Smoke tests: every shipped example runs to completion.

Each example asserts its own correctness internally (logical equivalence
checks); these tests keep them green and their printed claims honest.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they show"


def test_all_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "datacenter_monitoring",
        "congestion_masking",
        "plan_switching_feedback",
        "stock_ticker",
        "query_jumpstart",
    } <= names
