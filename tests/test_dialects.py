"""Dialect converters: open/close <-> insert/adjust (Example 3 bridge)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lmerge.r3 import LMergeR3
from repro.streams.stream import PhysicalStream
from repro.temporal.dialects import (
    elements_to_open_close,
    open_close_to_elements,
)
from repro.temporal.elements import Adjust, Close, Insert, Open, Stable
from repro.temporal.tdb import (
    StreamViolationError,
    reconstitute,
    reconstitute_open_close,
)
from repro.temporal.time import INFINITY


class TestOpenCloseToElements:
    def test_open_becomes_infinite_insert(self):
        assert open_close_to_elements([Open("A", 1)]) == [
            Insert("A", 1, INFINITY)
        ]

    def test_close_becomes_adjust(self):
        elements = open_close_to_elements([Open("A", 1), Close("A", 5)])
        assert elements == [
            Insert("A", 1, INFINITY),
            Adjust("A", 1, INFINITY, 5),
        ]

    def test_close_revision(self):
        """W[6]'s pattern: a second close revises the first."""
        elements = open_close_to_elements(
            [Open("B", 2), Close("B", 6), Close("B", 5)]
        )
        assert reconstitute(elements) == reconstitute([Insert("B", 2, 5)])

    def test_example3_streams_translate_equivalently(self):
        s5 = [Open("A", 1), Open("B", 2), Open("C", 3), Close("A", 4), Close("B", 5)]
        u5 = [Open("A", 1), Close("A", 4), Open("B", 2), Close("B", 5), Open("C", 3)]
        left = reconstitute(open_close_to_elements(s5))
        right = reconstitute(open_close_to_elements(u5))
        assert left == right == reconstitute_open_close(s5)

    def test_double_open_rejected(self):
        with pytest.raises(StreamViolationError):
            open_close_to_elements([Open("A", 1), Open("A", 2)])

    def test_close_without_open_rejected(self):
        with pytest.raises(StreamViolationError):
            open_close_to_elements([Close("A", 2)])

    def test_non_element_rejected(self):
        with pytest.raises(TypeError):
            open_close_to_elements([Insert("A", 1)])


class TestElementsToOpenClose:
    def test_infinite_insert_becomes_open(self):
        assert elements_to_open_close([Insert("A", 1)]) == [Open("A", 1)]

    def test_finite_insert_becomes_open_close(self):
        assert elements_to_open_close([Insert("A", 1, 5)]) == [
            Open("A", 1),
            Close("A", 5),
        ]

    def test_adjust_becomes_revising_close(self):
        converted = elements_to_open_close(
            [Insert("A", 1, 5), Adjust("A", 1, 5, 9)]
        )
        assert converted == [Open("A", 1), Close("A", 5), Close("A", 9)]
        assert reconstitute_open_close(converted) == reconstitute(
            [Insert("A", 1, 9)]
        )

    def test_stables_dropped(self):
        assert elements_to_open_close([Stable(5), Insert("A", 6)]) == [
            Open("A", 6)
        ]

    def test_cancel_unrepresentable(self):
        with pytest.raises(StreamViolationError):
            elements_to_open_close([Insert("A", 1, 5), Adjust("A", 1, 5, 1)])

    def test_concurrent_same_payload_rejected(self):
        with pytest.raises(StreamViolationError):
            elements_to_open_close([Insert("A", 1, 5), Insert("A", 2, 6)])


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_open_close_round_trip_preserves_tdb(self, seed):
        """open/close -> elements -> open/close keeps the logical TDB."""
        rng = random.Random(seed)
        stream = []
        active = []
        clock = 0
        for payload_id in range(rng.randint(1, 15)):
            clock += rng.randint(0, 3)
            payload = f"p{payload_id}"
            stream.append(Open(payload, clock))
            active.append((payload, clock))
            if rng.random() < 0.7 and active:
                who, vs = active.pop(rng.randrange(len(active)))
                stream.append(Close(who, vs + rng.randint(1, 10)))
        translated = open_close_to_elements(stream)
        back = elements_to_open_close(translated)
        assert reconstitute_open_close(back) == reconstitute_open_close(stream)
        assert reconstitute(translated) == reconstitute_open_close(stream)


class TestMergingOpenCloseSources:
    def test_lmerge_over_translated_streams(self):
        """The point of the bridge: LMerge applies to open/close sources."""
        s5 = [Open("A", 1), Open("B", 2), Open("C", 3), Close("A", 4), Close("B", 5)]
        u5 = [Open("A", 1), Close("A", 4), Open("B", 2), Close("B", 5), Open("C", 3)]
        inputs = [
            PhysicalStream(open_close_to_elements(s) + [Stable(INFINITY)])
            for s in (s5, u5)
        ]
        merge = LMergeR3()
        output = merge.merge(inputs, schedule="round_robin")
        expected = reconstitute_open_close(s5)
        expected.stable_point = INFINITY
        assert output.tdb() == expected
