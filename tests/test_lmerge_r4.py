"""Tests for Algorithm R4 (LMR4): multiset TDBs, duplicates, and the
AdjustOutputCount / AdjustOutput invariants."""

import random

import pytest

from repro.lmerge.r4 import LMergeR4
from repro.streams.divergence import diverge, duplicate_inserts
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Event
from repro.temporal.tdb import TDB
from repro.temporal.time import INFINITY

from conftest import divergent_inputs, merge_with_oracle, small_stream


def attach(merge, n=2):
    for stream_id in range(n):
        merge.attach(stream_id)
    return merge


class TestDuplicateEvents:
    def test_exact_duplicates_preserved(self):
        """Two identical events on every input -> two on the output."""
        stream = PhysicalStream(
            [Insert("A", 1, 5), Insert("A", 1, 5), Stable(INFINITY)]
        )
        merge = LMergeR4()
        output = merge.merge([stream, stream])
        assert output.tdb().count(Event(1, "A", 5)) == 2

    def test_count_based_dedup_on_insert(self):
        """Line 9: an insert is output only when the delivering stream's
        count exceeds the output's count for the key."""
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 5), 0)
        merge.process(Insert("A", 1, 5), 1)  # duplicate from the other input
        assert merge.stats.inserts_out == 1
        merge.process(Insert("A", 1, 5), 1)  # second copy on input 1: new
        assert merge.stats.inserts_out == 2

    def test_same_key_different_ves(self):
        stream = PhysicalStream(
            [Insert("A", 1, 5), Insert("A", 1, 9), Stable(INFINITY)]
        )
        merge = LMergeR4()
        output = merge.merge([stream, stream, stream])
        tdb = output.tdb()
        assert tdb.count(Event(1, "A", 5)) == 1
        assert tdb.count(Event(1, "A", 9)) == 1


class TestAdjustHandling:
    def test_adjust_moves_count(self):
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 5), 0)
        merge.process(Adjust("A", 1, 5, 9), 0)
        merge.process(Stable(INFINITY), 0)
        assert merge.output.tdb() == TDB([Event(1, "A", 9)])

    def test_cancel_removes(self):
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 5), 0)
        merge.process(Adjust("A", 1, 5, 1), 0)
        merge.process(Stable(INFINITY), 0)
        assert len(merge.output.tdb()) == 0

    def test_adjust_unknown_key_ignored(self):
        merge = attach(LMergeR4())
        merge.process(Adjust("ghost", 1, 5, 9), 0)
        assert merge.stats.elements_out == 0

    def test_adjust_untracked_version_ignored(self):
        """A revision referencing a version this input never delivered
        here (e.g. replayed history) is irrelevant."""
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 5), 0)
        merge.process(Adjust("A", 1, 99, 7), 1)  # input 1 never inserted A
        merge.process(Stable(INFINITY), 0)
        assert merge.output.tdb() == TDB([Event(1, "A", 5)])


class TestStableInvariants:
    def test_output_count_pinned_at_half_freeze(self):
        """AdjustOutputCount: the freezing input has two copies, the
        output only one -> a second insert is emitted before stable()."""
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 5), 0)
        merge.process(Insert("A", 1, 5), 0)
        # Output has 2 (both from input 0).  Input 1 delivers only one and
        # then freezes: output must come down to one copy.
        merge.process(Insert("A", 1, 5), 1)
        merge.process(Stable(3), 1)
        tdb = merge.output.tdb()
        assert tdb.count(Event(1, "A", 5)) == 1

    def test_surplus_cancelled_on_freeze(self):
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 5), 0)
        merge.process(Insert("A", 1, 9), 0)
        merge.process(Insert("A", 1, 5), 1)
        merge.process(Stable(10), 1)  # input 1 holds exactly one copy at Ve=5
        tdb = merge.output.tdb()
        assert tdb.count(Event(1, "A", 5)) == 1
        assert tdb.count(Event(1, "A", 9)) == 0

    def test_missing_version_retimed_on_freeze(self):
        """AdjustOutput: the output's version is retimed to the input's
        fully frozen Ve rather than deleted + reinserted."""
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 9), 0)  # output carries Ve=9
        merge.process(Insert("A", 1, 5), 1)  # input 1's version ends at 5
        merge.process(Stable(7), 1)  # freezes Ve=5 fully
        tdb = merge.output.tdb()
        assert tdb.count(Event(1, "A", 5)) == 1
        assert tdb.count(Event(1, "A", 9)) == 0

    def test_node_deleted_when_all_versions_frozen(self):
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 5), 0)
        assert merge.live_keys == 1
        merge.process(Stable(6), 0)
        assert merge.live_keys == 0

    def test_stable_forwarded_after_reconciliation(self):
        merge = attach(LMergeR4())
        merge.process(Insert("A", 1, 5), 1)
        merge.process(Stable(6), 0)  # input 0 never had A
        output = list(merge.output)
        # The cancel must precede the stable on the output stream.
        assert isinstance(output[-1], Stable)
        merge.output.tdb()  # strict reconstitution validates ordering


class TestEquivalenceWithDuplicates:
    def test_duplicated_replicas(self):
        reference = small_stream(count=300, seed=21)
        rng = random.Random(77)
        duplicated = duplicate_inserts(reference, rng, fraction=0.2)
        inputs = [
            diverge(duplicated, seed=i, speculate_fraction=0.3) for i in range(3)
        ]
        merge = LMergeR4()
        output = merge.merge(inputs, schedule="random", seed=1)
        assert output.tdb() == duplicated.tdb()

    @pytest.mark.parametrize("schedule", ["round_robin", "sequential", "random"])
    def test_keyed_inputs_all_schedules(self, schedule):
        reference = small_stream(count=500, seed=22)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=0.4)
        merge = LMergeR4()
        output = merge.merge(inputs, schedule=schedule)
        assert output.tdb() == reference.tdb()

    def test_r4_conformance_oracle(self):
        reference = small_stream(count=200, seed=23)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=0.3)
        merge_with_oracle(
            LMergeR4(), inputs, check_r3=True, check_r4=True, check_every=5
        )

    def test_r4_conformance_oracle_with_duplicates(self):
        reference = small_stream(count=150, seed=24)
        duplicated = duplicate_inserts(reference, random.Random(5), fraction=0.2)
        inputs = [diverge(duplicated, seed=i) for i in range(2)]
        # Key property does not hold: only the R4 count oracle applies.
        merge_with_oracle(
            LMergeR4(), inputs, check_r3=False, check_r4=True, check_every=3
        )


class TestDetach:
    def test_detach_unblocks_progress(self):
        merge = attach(LMergeR4(), n=2)
        merge.process(Insert("A", 1, 5), 0)
        merge.detach(0)
        merge.process(Insert("A", 1, 5), 1)
        merge.process(Stable(INFINITY), 1)
        assert merge.output.tdb() == TDB([Event(1, "A", 5)])

    def test_survives_failure_of_all_but_one(self):
        reference = small_stream(count=300, seed=25)
        inputs = divergent_inputs(reference, n=3)
        merge = attach(LMergeR4(), n=3)
        for element in inputs[1][: len(inputs[1]) // 2]:
            merge.process(element, 1)
        merge.detach(1)
        for element in inputs[0]:
            merge.process(element, 0)
        merge.detach(2)
        assert merge.output.tdb() == reference.tdb()
