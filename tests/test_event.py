"""Tests for repro.temporal.event."""

import pytest

from repro.temporal.event import Event, FreezeStatus, freeze_status
from repro.temporal.time import INFINITY, MINUS_INFINITY


class TestEventConstruction:
    def test_basic(self):
        event = Event(5, "A", 10)
        assert event.vs == 5
        assert event.payload == "A"
        assert event.ve == 10

    def test_default_end_is_infinity(self):
        assert Event(5, "A").ve == INFINITY

    def test_key(self):
        assert Event(5, "A", 10).key == (5, "A")

    def test_rejects_empty_lifetime(self):
        with pytest.raises(ValueError):
            Event(5, "A", 5, validate=True)

    def test_rejects_reversed_lifetime(self):
        with pytest.raises(ValueError):
            Event(5, "A", 3, validate=True)

    def test_rejects_infinite_start(self):
        with pytest.raises(ValueError):
            Event(INFINITY, "A", validate=True)

    def test_rejects_non_numeric_times(self):
        with pytest.raises(TypeError):
            Event("5", "A", 10, validate=True)

    def test_validation_is_opt_in(self):
        # Hot-path construction (one Event per indexed insert) skips the
        # contract checks; validate=True restores them at trust boundaries.
        assert Event(5, "A", 5).ve == 5

    def test_immutable(self):
        event = Event(5, "A", 10)
        with pytest.raises(AttributeError):
            event.ve = 12

    def test_equality_and_hash(self):
        assert Event(5, "A", 10) == Event(5, "A", 10)
        assert Event(5, "A", 10) != Event(5, "A", 11)
        assert hash(Event(5, "A", 10)) == hash(Event(5, "A", 10))

    def test_ordering_by_vs_then_payload(self):
        assert Event(1, "B") < Event(2, "A")
        assert Event(1, "A") < Event(1, "B")


class TestEventQueries:
    def test_with_end(self):
        assert Event(5, "A", 10).with_end(12) == Event(5, "A", 12)

    def test_active_at_inside(self):
        assert Event(5, "A", 10).active_at(5)
        assert Event(5, "A", 10).active_at(9)

    def test_active_at_boundary_exclusive(self):
        assert not Event(5, "A", 10).active_at(10)

    def test_active_before_start(self):
        assert not Event(5, "A", 10).active_at(4)

    def test_infinite_event_always_active_after_start(self):
        assert Event(5, "A").active_at(10**12)

    def test_overlaps(self):
        event = Event(5, "A", 10)
        assert event.overlaps(0, 6)
        assert event.overlaps(9, 20)
        assert not event.overlaps(10, 20)  # half-open: no touch at Ve
        assert not event.overlaps(0, 5)  # half-open: no touch at Vs


class TestFreezeStatus:
    """Section III-C definitions relative to a stable point Vc."""

    def test_unfrozen_when_no_stable(self):
        assert freeze_status(Event(5, "A", 10), MINUS_INFINITY) is FreezeStatus.UNFROZEN

    def test_unfrozen_when_stable_at_vs(self):
        # Vc <= Vs: the event may still be removed entirely.
        assert freeze_status(Event(5, "A", 10), 5) is FreezeStatus.UNFROZEN

    def test_half_frozen_inside_lifetime(self):
        assert freeze_status(Event(5, "A", 10), 7) is FreezeStatus.HALF_FROZEN

    def test_half_frozen_at_ve(self):
        # Vs < Vc <= Ve is HF (the end can still move up, not below Vc).
        assert freeze_status(Event(5, "A", 10), 10) is FreezeStatus.HALF_FROZEN

    def test_fully_frozen_past_ve(self):
        assert freeze_status(Event(5, "A", 10), 11) is FreezeStatus.FULLY_FROZEN

    def test_infinite_event_never_fully_frozen(self):
        assert freeze_status(Event(5, "A"), 10**15) is FreezeStatus.HALF_FROZEN

    def test_stable_infinity_freezes_finite_events(self):
        assert freeze_status(Event(5, "A", 10), INFINITY) is FreezeStatus.FULLY_FROZEN
