"""Tests for Algorithm R3 (LMR3+) and the naive variant (LMR3-)."""

import pytest

from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r3_naive import LMergeR3Naive
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Event
from repro.temporal.tdb import TDB
from repro.temporal.time import INFINITY

from conftest import (
    assert_merge_equivalent,
    divergent_inputs,
    merge_with_oracle,
    small_stream,
)


def attach(merge, n=2):
    for stream_id in range(n):
        merge.attach(stream_id)
    return merge


ALGORITHMS = [LMergeR3, LMergeR3Naive]


@pytest.fixture(params=ALGORITHMS, ids=["LMR3+", "LMR3-"])
def algorithm(request):
    return request.param


class TestPaperTableI:
    """Merging the paper's Phy1/Phy2 yields the Table I TDB."""

    def make_inputs(self):
        phy1 = PhysicalStream(
            [
                Insert("B", 8, INFINITY),
                Insert("A", 6, 12),
                Adjust("B", 8, INFINITY, 10),
                Stable(11),
                Stable(INFINITY),
            ]
        )
        phy2 = PhysicalStream(
            [
                Insert("A", 6, 7),
                Insert("B", 8, 15),
                Adjust("A", 6, 7, 12),
                Adjust("B", 8, 15, 10),
                Stable(INFINITY),
            ]
        )
        return [phy1, phy2]

    def test_merge_round_robin(self, algorithm):
        expected = TDB([Event(6, "A", 12), Event(8, "B", 10)])
        merge = algorithm()
        output = merge.merge(self.make_inputs())
        assert output.tdb() == expected

    def test_merge_all_schedules(self, algorithm):
        expected = TDB([Event(6, "A", 12), Event(8, "B", 10)])
        for schedule in ("round_robin", "sequential", "random"):
            merge = algorithm()
            output = merge.merge(self.make_inputs(), schedule=schedule)
            assert output.tdb() == expected, schedule


class TestIntroPunctuationHazard:
    """Section I-B.2: after following Phy2's a(A,6,7) and a(B,8,15),
    Phy1's f(11) must not freeze the output prematurely."""

    def test_stable_held_back_correctly(self):
        merge = attach(LMergeR3())
        merge.process(Insert("A", 6, 7), 1)
        merge.process(Insert("B", 8, 15), 1)
        merge.process(Stable(11), 0)
        # Emitting stable(11) naively would freeze A at [6,7) and prevent
        # B's end from dropping to 10.  R3 reconciles first: stream 0 has
        # produced neither event yet, so both must be withdrawn.
        output_tdb = merge.output.tdb()
        assert output_tdb.stable_point == 11
        assert not list(output_tdb)  # both events cancelled
        # ... and the events can still appear later from stream 0's data.
        merge.process(Insert("A2", 12, 20), 0)
        assert Event(12, "A2", 20) in merge.output.tdb()


class TestReconciliation:
    def test_no_input_event_on_freezing_stream_cancels(self):
        merge = attach(LMergeR3())
        merge.process(Insert("A", 5, 8), 1)
        merge.process(Stable(6), 0)  # stream 0 lacks A and freezes past 5
        tdb = merge.output.tdb()
        assert Event(5, "A", 8) not in tdb

    def test_output_matches_freezing_streams_ve(self):
        merge = attach(LMergeR3())
        merge.process(Insert("A", 5, 8), 1)
        merge.process(Insert("A", 5, 10), 0)
        merge.process(Stable(12), 0)  # fully freezes A at stream 0's Ve=10
        assert Event(5, "A", 10) in merge.output.tdb()

    def test_half_frozen_divergence_tolerated(self):
        """Both Ve values past the stable point: no adjust needed yet."""
        merge = attach(LMergeR3())
        merge.process(Insert("A", 5, 100), 1)
        merge.process(Insert("A", 5, 200), 0)
        merge.process(Stable(10), 0)
        assert merge.stats.adjusts_out == 0

    def test_node_deleted_when_fully_frozen(self):
        merge = attach(LMergeR3())
        merge.process(Insert("A", 5, 8), 0)
        assert merge.live_keys == 1
        merge.process(Stable(9), 0)
        assert merge.live_keys == 0

    def test_late_insert_for_frozen_key_dropped(self):
        merge = attach(LMergeR3())
        merge.process(Insert("A", 5, 8), 0)
        merge.process(Stable(9), 0)
        before = merge.stats.inserts_out
        merge.process(Insert("A", 5, 8), 1)  # laggard catches up
        assert merge.stats.inserts_out == before

    def test_adjust_for_unknown_key_ignored(self):
        merge = attach(LMergeR3())
        merge.process(Adjust("ghost", 5, 8, 9), 0)
        assert merge.stats.elements_out == 0

    def test_stable_regression_ignored(self):
        merge = attach(LMergeR3())
        merge.process(Stable(10), 0)
        merge.process(Stable(7), 1)
        assert merge.stats.stables_out == 1


class TestTheorem1NonChattiness:
    """Theorem 1: R3 outputs no more insert()+adjust() elements than the
    inserts received, and no more stables than stables received."""

    @pytest.mark.parametrize("speculate", [0.0, 0.3, 0.8])
    def test_bound_holds(self, speculate):
        reference = small_stream(count=600, seed=3)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=speculate)
        merge = LMergeR3()
        merge.merge(inputs, schedule="random", seed=5)
        assert (
            merge.stats.inserts_out + merge.stats.adjusts_out
            <= merge.stats.inserts_in
        )
        assert merge.stats.stables_out <= merge.stats.stables_in


class TestOracleCompliance:
    """After every element, the output prefix satisfies C1-C3."""

    def test_oracle_round_robin(self, algorithm):
        reference = small_stream(count=200, seed=7)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=0.4)
        merge_with_oracle(algorithm(), inputs, check_every=5)

    def test_oracle_random_schedule(self, algorithm):
        reference = small_stream(count=200, seed=8)
        inputs = divergent_inputs(reference, n=2, speculate_fraction=0.5)
        merge_with_oracle(algorithm(), inputs, schedule="random", check_every=5)

    def test_oracle_with_thinned_stables(self, algorithm):
        reference = small_stream(count=200, seed=9, stable_freq=0.1)
        inputs = divergent_inputs(
            reference, n=3, speculate_fraction=0.2, stable_keep_probability=0.4
        )
        merge_with_oracle(algorithm(), inputs, check_every=7)


class TestEquivalenceAtScale:
    @pytest.mark.parametrize("schedule", ["round_robin", "sequential", "random"])
    def test_divergent_replicas(self, algorithm, schedule):
        reference = small_stream(count=800, seed=11)
        inputs = divergent_inputs(reference, n=4, speculate_fraction=0.35)
        assert_merge_equivalent(
            algorithm(), inputs, reference.tdb(), schedule=schedule
        )

    def test_single_input_passthrough_equivalence(self, algorithm):
        reference = small_stream(count=400, seed=12)
        assert_merge_equivalent(algorithm(), [reference], reference.tdb())

    def test_many_inputs(self, algorithm):
        reference = small_stream(count=300, seed=13)
        inputs = divergent_inputs(reference, n=8, speculate_fraction=0.3)
        assert_merge_equivalent(algorithm(), inputs, reference.tdb())


class TestDetach:
    def test_detach_removes_influence(self):
        merge = attach(LMergeR3(), n=3)
        merge.process(Insert("A", 5, 100), 2)
        merge.detach(2)
        # Stream 0 freezes past A without having produced it -> cancel.
        merge.process(Stable(50), 0)
        assert Event(5, "A", 100) not in merge.output.tdb()

    def test_survives_failure_of_all_but_one(self):
        reference = small_stream(count=300, seed=14)
        inputs = divergent_inputs(reference, n=3)
        merge = attach(LMergeR3(), n=3)
        # Streams 1 and 2 deliver only a prefix, then die.
        for element in inputs[1][: len(inputs[1]) // 3]:
            merge.process(element, 1)
        for element in inputs[2][: len(inputs[2]) // 2]:
            merge.process(element, 2)
        merge.detach(1)
        merge.detach(2)
        for element in inputs[0]:
            merge.process(element, 0)
        assert merge.output.tdb() == reference.tdb()


class TestMemorySharing:
    def test_r3_plus_beats_naive_on_many_inputs(self):
        """The Fig. 2 claim in miniature: in2t's payload sharing keeps
        LMR3+ memory roughly flat in the input count while LMR3- grows."""
        reference = small_stream(count=400, seed=15, blob=200, stable_freq=0.0)
        inputs = divergent_inputs(reference, n=6)
        plus, naive = LMergeR3(), LMergeR3Naive()
        peak_plus = peak_naive = 0
        for merge, tracker in ((plus, "plus"), (naive, "naive")):
            for stream_id in range(len(inputs)):
                merge.attach(stream_id)
        from repro.lmerge.base import interleave

        for element, stream_id in interleave(inputs, "round_robin", 0):
            plus.process(element, stream_id)
            naive.process(element, stream_id)
            peak_plus = max(peak_plus, plus.memory_bytes())
            peak_naive = max(peak_naive, naive.memory_bytes())
        assert peak_naive > 2 * peak_plus
