"""Tests for the HA applications: replication under failures, checkpoint
jumpstart, and query cutover (Section II)."""

import pytest

from repro.ha.checkpoint import checkpoint_of, replay_stream
from repro.ha.cutover import cutover
from repro.ha.replica import FailureEvent, RecoveryMode, ReplicatedDeployment
from repro.lmerge.r3 import LMergeR3
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Insert, Stable
from repro.temporal.event import Event
from repro.temporal.tdb import TDB
from repro.temporal.time import INFINITY

from conftest import divergent_inputs, small_stream


class TestReplicationNoFailures:
    def test_plain_replication(self):
        reference = small_stream(count=300, seed=61)
        inputs = divergent_inputs(reference, n=3)
        deployment = ReplicatedDeployment(LMergeR3(), inputs)
        output = deployment.run()
        assert output.tdb() == reference.tdb()


class TestFailures:
    def make(self, failures, n=3, seed=62, count=400):
        reference = small_stream(count=count, seed=seed)
        inputs = divergent_inputs(reference, n=n)
        deployment = ReplicatedDeployment(LMergeR3(), inputs, failures)
        return reference, deployment

    def test_permanent_failure_of_one_replica(self):
        reference, deployment = self.make(
            [FailureEvent(replica=1, fail_after=100)]
        )
        output = deployment.run()
        assert output.tdb() == reference.tdb()
        assert deployment.detach_count == 1

    def test_permanent_failure_of_all_but_one(self):
        reference, deployment = self.make(
            [
                FailureEvent(replica=1, fail_after=50),
                FailureEvent(replica=2, fail_after=120),
            ]
        )
        output = deployment.run()
        assert output.tdb() == reference.tdb()

    def test_pause_and_recover(self):
        reference, deployment = self.make(
            [
                FailureEvent(
                    replica=1,
                    fail_after=100,
                    down_for=50,
                    mode=RecoveryMode.PAUSE,
                )
            ]
        )
        output = deployment.run()
        assert output.tdb() == reference.tdb()
        assert deployment.reattach_count == 1

    def test_rewind_recovery_duplicates_history(self):
        """A restarted replica re-delivers elements it already sent; the
        merge absorbs the duplicates."""
        reference, deployment = self.make(
            [
                FailureEvent(
                    replica=1,
                    fail_after=150,
                    down_for=30,
                    mode=RecoveryMode.REWIND,
                    rewind=100,
                )
            ]
        )
        output = deployment.run()
        assert output.tdb() == reference.tdb()

    def test_gap_recovery_with_coverage(self):
        """A replica that lost its backlog is fine as long as the others
        cover the gap."""
        reference, deployment = self.make(
            [
                FailureEvent(
                    replica=1,
                    fail_after=150,
                    down_for=40,
                    mode=RecoveryMode.GAP,
                )
            ]
        )
        output = deployment.run()
        assert output.tdb() == reference.tdb()

    def test_overlapping_failures(self):
        reference, deployment = self.make(
            [
                FailureEvent(replica=0, fail_after=100, down_for=60),
                FailureEvent(replica=1, fail_after=120, down_for=60),
            ]
        )
        output = deployment.run()
        assert output.tdb() == reference.tdb()

    def test_unknown_replica_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedDeployment(
                LMergeR3(),
                [PhysicalStream([Stable(INFINITY)])],
                [FailureEvent(replica=5, fail_after=0)],
            )

    def test_failure_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(replica=0, fail_after=-1)
        with pytest.raises(ValueError):
            FailureEvent(replica=0, fail_after=0, down_for=0)
        with pytest.raises(ValueError):
            FailureEvent(replica=0, fail_after=0, rewind=-1)


class TestCheckpoint:
    def test_checkpoint_keeps_only_relevant_events(self):
        tdb = TDB([Event(1, "old", 5), Event(2, "live", 20), Event(8, "new", 30)])
        tdb.stable_point = 10
        checkpoint = checkpoint_of(tdb, as_of=10)
        payloads = {event.payload for event in checkpoint.events}
        assert payloads == {"live", "new"}

    def test_checkpoint_beyond_stable_rejected(self):
        tdb = TDB([Event(1, "a", 5)])
        tdb.stable_point = 3
        with pytest.raises(ValueError):
            checkpoint_of(tdb, as_of=10)

    def test_replay_stream_is_valid(self):
        tdb = TDB([Event(2, "live", 20)])
        tdb.stable_point = 10
        checkpoint = checkpoint_of(tdb, as_of=10)
        replay = replay_stream(checkpoint, [Insert("tail", 12, 25), Stable(INFINITY)])
        replay.tdb()  # strict

    def test_jumpstart_into_running_merge(self):
        """A fresh replica seeded from a checkpoint joins a live merge and
        can then sustain the output alone."""
        reference = small_stream(count=400, seed=63, stable_freq=0.1)
        merge = LMergeR3()
        merge.attach(0)
        # Drive the primary halfway.
        half = len(reference) // 2
        for element in reference[:half]:
            merge.process(element, 0)
        # Checkpoint the merged output state (as a warm copy would).
        out_tdb = merge.output.tdb()
        as_of = out_tdb.stable_point
        checkpoint = checkpoint_of(out_tdb, as_of=as_of)
        # Build the newcomer's stream: replay + the primary's remaining tail.
        newcomer = replay_stream(checkpoint, reference[half:])
        merge.attach(1, guarantee_from=as_of)
        # The primary dies immediately; the newcomer carries the query.
        merge.detach(0)
        for element in newcomer:
            merge.process(element, 1)
        assert merge.output.tdb() == reference.tdb()

    def test_jumpstart_is_joined_once_stable_passes_guarantee(self):
        reference = small_stream(count=200, seed=64, stable_freq=0.1)
        merge = LMergeR3()
        merge.attach(0)
        for element in reference[: len(reference) // 2]:
            merge.process(element, 0)
        as_of = merge.max_stable
        merge.attach(1, guarantee_from=as_of + 1)
        assert not merge.is_joined(1)
        merge.process(Stable(INFINITY), 0)
        assert merge.is_joined(1)


class TestCutover:
    def test_switch_plans_mid_query(self):
        reference = small_stream(count=400, seed=65, stable_freq=0.1)
        inputs = divergent_inputs(reference, n=2)
        merge = LMergeR3()
        merge.attach("old")
        # Old plan runs the first 40%.
        split = int(len(inputs[0]) * 0.4)
        for element in inputs[0][:split]:
            merge.process(element, "old")
        old_tail = iter(inputs[0][split:])
        # New plan replays from scratch (guarantee: everything).
        old_used, new_used = cutover(
            merge,
            old_id="old",
            old_tail=old_tail,
            new_id="new",
            new_stream=inputs[1],
            guarantee_from=merge.max_stable,
        )
        assert not merge.is_attached("old")
        assert merge.output.tdb() == reference.tdb()
        assert new_used == len(inputs[1])

    def test_cutover_failure_when_new_plan_stalls(self):
        merge = LMergeR3()
        merge.attach("old")
        stalled = PhysicalStream([Insert("x", 1, 5)])  # never punctuates
        with pytest.raises(RuntimeError):
            cutover(
                merge,
                old_id="old",
                old_tail=iter([]),
                new_id="new",
                new_stream=stalled,
                guarantee_from=100,
            )
