"""Bounded merge state (PR 8): pruning, pooling, and cold-run spill.

Covers the tentpole's contracts:

* with ``reclamation=None`` (the default) behaviour is the seed's,
  bit-for-bit;
* with pruning enabled the *output* stays element-identical on
  equivalence workloads while resident state stays O(disorder window);
* snapshot -> prune -> restore (and the reverse order) round-trip
  element-identically across R0-R4, including with runs spilled into the
  durable StateStore;
* the semantic relaxation is pinned: a re-insert of a pruned key is
  dropped exactly like the seed drops re-inserts of frozen keys;
* sharded plans thread the policy through and preserve TDB equivalence.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lmerge import (
    LMergeR0,
    LMergeR1,
    LMergeR2,
    LMergeR3,
    LMergeR4,
    ReclamationPolicy,
)
from repro.lmerge.shard import shard
from repro.structures.spill import RunSpill
from repro.temporal.elements import Insert, Stable
from repro.temporal.time import INFINITY
from repro.theory.equivalence import equivalent_prefixes

from conftest import divergent_inputs, small_stream

ALL_VARIANTS = [LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR4]
INDEXED = [LMergeR3, LMergeR4]

PRUNE = ReclamationPolicy()
PRUNE_LAGGED = ReclamationPolicy(settle_lag=100)


def spill_policy(**overrides):
    defaults = dict(spill=True, run_width=64, hot_runs=2)
    defaults.update(overrides)
    return ReclamationPolicy(**defaults)


def variant_inputs(variant, seed, disorder=0.3):
    if variant in (LMergeR0, LMergeR1, LMergeR2):
        reference = small_stream(count=120, seed=seed, disorder=0.0, min_gap=1)
        return reference, [reference, reference]
    reference = small_stream(count=120, seed=seed, disorder=disorder)
    return reference, divergent_inputs(reference, n=2)


def replay(merge, inputs):
    return merge.merge([list(s) for s in inputs], schedule="round_robin")


def drive_lagged(merge, n=2000, run=50, window=800):
    """Two replicas of an infinite-Ve point stream; replica 1 trails by
    *window* elements.  The shape that makes seed state grow O(n) and
    gives the spill a cold tail to evict."""
    merge.attach(0)
    merge.attach(1)
    backlog = []
    for i in range(n):
        merge.process(Insert(f"p{i}", i, INFINITY), 0)
        backlog.append(Insert(f"p{i}", i, INFINITY))
        if i % run == run - 1:
            merge.process(Stable(i), 0)
        if len(backlog) > window:
            element = backlog.pop(0)
            merge.process(element, 1)
            if element.vs % run == run - 1:
                merge.process(Stable(element.vs), 1)
    return merge


class TestSeedDefault:
    def test_default_is_seed_identical(self):
        for variant in INDEXED:
            reference, inputs = variant_inputs(variant, seed=3)
            seed_out = replay(variant(), inputs)
            default_out = replay(variant(reclamation=None), inputs)
            assert list(seed_out) == list(default_out)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ReclamationPolicy(settle_lag=-1)
        with pytest.raises(ValueError):
            ReclamationPolicy(run_width=0)
        with pytest.raises(ValueError):
            ReclamationPolicy(hot_runs=-1)


class TestPrunedOutputEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        variant=st.sampled_from(INDEXED),
        seed=st.integers(0, 30),
        disorder=st.sampled_from([0.0, 0.2, 0.5]),
        policy=st.sampled_from([PRUNE, PRUNE_LAGGED]),
    )
    def test_output_identical_on_equivalence_workloads(
        self, variant, seed, disorder, policy
    ):
        reference, inputs = variant_inputs(variant, seed, disorder)
        seed_out = replay(variant(), inputs)
        rec_out = replay(variant(reclamation=policy), inputs)
        assert list(seed_out) == list(rec_out)

    def test_resident_state_stays_bounded(self):
        for variant in INDEXED:
            seed_merge = drive_lagged(variant(), window=200)
            rec_merge = drive_lagged(variant(reclamation=PRUNE), window=200)
            assert list(seed_merge.output) == list(rec_merge.output)
            # Seed retains every never-fully-frozen key; reclamation holds
            # only the unsettled lag window.
            assert seed_merge.live_keys > 1500
            assert rec_merge.index_nodes <= 300
            assert rec_merge.pruned_nodes > 1500

    def test_settle_lag_retains_window(self):
        eager = drive_lagged(LMergeR3(reclamation=PRUNE), window=200)
        lagged = drive_lagged(
            LMergeR3(reclamation=ReclamationPolicy(settle_lag=500)),
            window=200,
        )
        assert list(eager.output) == list(lagged.output)
        assert lagged.index_nodes > eager.index_nodes
        assert lagged.index_nodes >= 500 // 50  # at least the lag window


class TestPostPruneSemantics:
    def test_reinsert_of_pruned_key_silent_like_seed(self):
        """A pruned key's Vs is below MaxStable, so a late re-insert is
        silent on both sides: the seed still holds the node and absorbs
        the duplicate; the reclaiming merge takes the dropped_frozen
        path.  Either way, nothing reaches the output."""
        for variant in INDEXED:
            seed_merge, rec_merge = variant(), variant(reclamation=PRUNE)
            for merge in (seed_merge, rec_merge):
                merge.attach(0)
                merge.attach(1)
                for sid in (0, 1):
                    merge.process(Insert("a", 1, INFINITY), sid)
                for sid in (0, 1):
                    merge.process(Stable(10), sid)
                before = len(merge.output)
                merge.process(Insert("a", 1, INFINITY), 0)
                assert len(merge.output) == before
            assert seed_merge.dropped_frozen == 0  # node retained
            assert rec_merge.dropped_frozen == 1  # node pruned
            assert rec_merge.index_nodes == 0
            assert list(seed_merge.output) == list(rec_merge.output)


class TestSnapshotRestore:
    @settings(max_examples=10, deadline=None)
    @given(variant=st.sampled_from(ALL_VARIANTS), seed=st.integers(0, 20))
    def test_snapshot_prune_restore_roundtrip(self, variant, seed):
        """snapshot -> restore with reclamation on resumes to the same
        output as running straight through (R0-R2 ignore the policy)."""
        reference, inputs = variant_inputs(variant, seed)
        policy = PRUNE
        straight = replay(variant(reclamation=policy), inputs)

        interleaved = list(
            __import__("repro.lmerge.base", fromlist=["interleave"]).interleave(
                [list(s) for s in inputs], "round_robin"
            )
        )
        cut = len(interleaved) // 2
        first = variant(reclamation=policy)
        for index in range(len(inputs)):
            first.attach(index)
        for element, sid in interleaved[:cut]:
            first.process(element, sid)
        snap = first.snapshot_state()

        second = variant(reclamation=policy)
        second.restore_state(snap)
        prefix = list(first.output)
        for element, sid in interleaved[cut:]:
            second.process(element, sid)
        assert prefix + list(second.output) == list(straight)

    def test_spilled_snapshot_matches_resident_snapshot(self):
        """Element-identical durable state whether or not runs are
        spilled at capture time, both directions."""
        for variant in INDEXED:
            spilled = drive_lagged(variant(reclamation=spill_policy()))
            resident = drive_lagged(variant(reclamation=PRUNE))
            assert list(spilled.output) == list(resident.output)
            assert spilled._spiller.spilled_nodes > 0
            snap_spilled = spilled.snapshot_state()
            snap_resident = resident.snapshot_state()
            assert (
                snap_spilled["extra"]["index"]
                == snap_resident["extra"]["index"]
            )

            # restore a spilled snapshot into a spilling merge and back out
            fresh = variant(reclamation=spill_policy())
            fresh.restore_state(snap_spilled)
            assert (
                fresh.snapshot_state()["extra"]["index"]
                == snap_resident["extra"]["index"]
            )
            # and a resident snapshot into a spilling merge
            other = variant(reclamation=spill_policy())
            other.restore_state(snap_resident)
            assert (
                other.snapshot_state()["extra"]["index"]
                == snap_resident["extra"]["index"]
            )

    def test_restore_clears_previous_spill_namespace(self, tmp_path):
        directory = os.fspath(tmp_path / "spill")
        policy = spill_policy(store_dir=directory)
        first = drive_lagged(LMergeR3(reclamation=policy, name="m"))
        assert first._spiller.has_spilled
        snap = first.snapshot_state()

        # A restarted incarnation sharing the directory must not resurrect
        # the old runs next to the restored records.
        second = LMergeR3(
            reclamation=spill_policy(store_dir=directory), name="m"
        )
        second.restore_state(snap)
        assert not second._spiller.has_spilled
        resident = drive_lagged(LMergeR3(reclamation=PRUNE))
        assert (
            second.snapshot_state()["extra"]["index"]
            == resident.snapshot_state()["extra"]["index"]
        )


class TestSpillBehaviour:
    def test_spill_output_identical_and_faults_on_touch(self):
        for variant in INDEXED:
            seed_merge = drive_lagged(variant())
            sp = drive_lagged(variant(reclamation=spill_policy()))
            assert list(seed_merge.output) == list(sp.output)
            stats = sp._spiller.stats()
            assert stats["spilled_runs_total"] > 0
            assert stats["faulted_runs_total"] > 0
            # spilled nodes are part of the logical key count
            assert sp.live_keys == sp.index_nodes + sp.spilled_nodes

    def test_covered_frozen_runs_drop_without_faulting(self):
        """A big stable() from the covering stream retires spilled runs
        whose summary proves them fully frozen — straight from the store,
        no deserialization."""

        def build(policy):
            merge = LMergeR3(reclamation=policy)
            merge.attach(0)
            merge.attach(1)  # attached but silent: its runs stay cold
            for i in range(512):
                merge.process(Insert(f"p{i}", i, float(i + 5000)), 0)
                if i % 32 == 31:
                    merge.process(Stable(i), 0)
            merge.process(Stable(10_000), 0)
            return merge

        merge = build(spill_policy(run_width=32, hot_runs=0))
        stats = merge._spiller.stats()
        assert stats["spilled_runs_total"] > 0
        assert stats["dropped_runs_total"] > 0
        # In-order inserts only touch the newest (never-spilled) run, and
        # the frozen runs died summary-only: nothing ever faulted in.
        assert stats["faulted_runs_total"] == 0
        assert merge.index_nodes == 0 and merge.spilled_nodes == 0
        # Seed-identical output: those nodes die silently there too.
        assert list(merge.output) == list(build(ReclamationPolicy(spill=False)).output)

    def test_run_of_handles_non_finite(self):
        spill = RunSpill(run_width=64)
        assert spill.run_of(float("inf")) is None
        assert spill.run_of(float("-inf")) is None
        assert spill.run_of(128) == 2
        spill.close()


class TestShardedWithReclamation:
    @settings(max_examples=8, deadline=None)
    @given(
        variant=st.sampled_from(INDEXED),
        num_shards=st.integers(1, 4),
        seed=st.integers(0, 15),
    )
    def test_sharded_tdb_equivalence_with_pruning(
        self, variant, num_shards, seed
    ):
        reference, inputs = variant_inputs(variant, seed)
        plan = shard(
            variant, num_shards, backend="serial", reclamation=PRUNE_LAGGED
        )
        output = plan.merge([list(s) for s in inputs], schedule="round_robin")
        unsharded = replay(variant(), inputs)
        assert output.tdb() == unsharded.tdb() == reference.tdb()
        assert equivalent_prefixes(
            list(output), len(output), list(unsharded), len(unsharded)
        )

    def test_sharded_with_spill(self, tmp_path):
        policy = spill_policy(store_dir=os.fspath(tmp_path / "shards"))
        reference, inputs = variant_inputs(LMergeR3, seed=5)
        plan = shard(LMergeR3, 3, backend="serial", reclamation=policy)
        output = plan.merge([list(s) for s in inputs], schedule="round_robin")
        assert output.tdb() == reference.tdb()


class TestFreelists:
    def test_entry_dicts_recycled_on_prune(self):
        from repro.structures.in2t import _ENTRY_DICTS

        merge = drive_lagged(LMergeR3(reclamation=PRUNE), n=1000, window=100)
        assert merge.pruned_nodes > 0
        assert _ENTRY_DICTS.released > 0

    def test_tiers_recycled_on_prune(self):
        from repro.structures.in3t import _COUNT_DICTS, _VE_TIERS

        merge = drive_lagged(LMergeR4(reclamation=PRUNE), n=1000, window=100)
        assert merge.pruned_nodes > 0
        assert _COUNT_DICTS.released > 0
        assert _VE_TIERS.released > 0

    def test_steady_state_allocates_no_tree_nodes(self):
        from repro.structures.rbtree import NODE_POOL

        merge = LMergeR3(reclamation=PRUNE)
        merge.attach(0)
        merge.attach(1)
        # Warm up: fill the working set once so the pool holds nodes.
        for i in range(256):
            for sid in (0, 1):
                merge.process(Insert(f"p{i}", i, INFINITY), sid)
            if i % 16 == 15:
                for sid in (0, 1):
                    merge.process(Stable(i), sid)
        allocated_before = NODE_POOL.stats()["allocated"]
        for i in range(256, 2048):
            for sid in (0, 1):
                merge.process(Insert(f"p{i}", i, INFINITY), sid)
            if i % 16 == 15:
                for sid in (0, 1):
                    merge.process(Stable(i), sid)
        # Steady-state churn (insert rate == reclaim rate) is served from
        # the freelist: no new tree-node allocations.
        assert NODE_POOL.stats()["allocated"] == allocated_before
