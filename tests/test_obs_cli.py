"""End-to-end CLI tests for instrumented merges: the observability
acceptance criteria for ``--metrics-out`` / ``--trace-out`` /
``--prom-out`` and the ``report`` subcommand."""

import json

import pytest

from repro.__main__ import main
from repro.obs.export import RunReport, instrument_value

from test_obs_export import parse_prometheus


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """Two divergent replicas of one generated workload, on disk."""
    root = tmp_path_factory.mktemp("obs_cli")
    a = root / "a.jsonl"
    b = root / "b.jsonl"
    assert main([
        "generate", str(a), "--count", "600", "--seed", "7",
        "--payload-bytes", "4",
    ]) == 0
    assert main(["diverge", str(a), str(b), "--seed", "3"]) == 0
    return root, a, b


@pytest.fixture(scope="module")
def instrumented(workload):
    """One instrumented merge run leaving all three artifacts behind."""
    root, a, b = workload
    out = root / "merged.jsonl"
    report_path = root / "report.json"
    trace_path = root / "trace.jsonl"
    prom_path = root / "metrics.prom"
    assert main([
        "merge", str(a), str(b), "-o", str(out),
        "--metrics-out", str(report_path),
        "--trace-out", str(trace_path),
        "--prom-out", str(prom_path),
    ]) == 0
    return out, report_path, trace_path, prom_path


class TestRunReportArtifact:
    def test_report_contains_throughput(self, instrumented):
        _, report_path, _, _ = instrumented
        report = RunReport.load(report_path)
        assert report.throughput_eps > 0
        assert report.wall_seconds > 0
        assert report.elements_in > 0

    def test_report_contains_per_input_lag_series(self, instrumented):
        _, report_path, _, _ = instrumented
        report = RunReport.load(report_path)
        assert set(report.frontier_lag) == {"0", "1"}
        for series in report.frontier_lag.values():
            assert series, "lag series must have samples"
            for t, lag in series:
                assert lag >= 0

    def test_report_contains_queue_peaks(self, instrumented):
        _, report_path, _, _ = instrumented
        report = RunReport.load(report_path)
        assert report.queue_peaks
        assert all(peak >= 1 for peak in report.queue_peaks.values())

    def test_report_contains_merge_stats(self, instrumented):
        _, report_path, _, _ = instrumented
        report = RunReport.load(report_path)
        for key in (
            "inserts_in", "inserts_out", "stables_in", "stables_out",
            "elements_in", "elements_out",
        ):
            assert key in report.merge_stats
        # Two replicas of one logical stream: duplicates were absorbed.
        assert report.merge_stats["inserts_out"] < report.merge_stats["inserts_in"]

    def test_report_metrics_snapshot_queryable(self, instrumented):
        _, report_path, _, _ = instrumented
        report = RunReport.load(report_path)
        inserts = instrument_value(
            report, "counter", "lmerge_inserts_in_total"
        )
        assert inserts == report.merge_stats["inserts_in"]

    def test_report_is_plain_json(self, instrumented):
        _, report_path, _, _ = instrumented
        data = json.loads(report_path.read_text())
        assert data["algorithm"]


class TestTraceArtifact:
    def test_trace_lines_are_valid_json(self, instrumented):
        _, _, trace_path, _ = instrumented
        lines = trace_path.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]  # must not raise
        kinds = {event["kind"] for event in events}
        assert "process_batch" in kinds or "receive_batch" in kinds
        assert "pump" in kinds


class TestPrometheusArtifact:
    def test_prometheus_exposes_same_counters_as_report(self, instrumented):
        _, report_path, _, prom_path = instrumented
        report = RunReport.load(report_path)
        types, samples = parse_prometheus(prom_path.read_text())
        prom_counters = {
            name for name, prom_type in types.items()
            if prom_type == "counter"
        }
        report_counters = {
            entry["name"] for entry in report.metrics.get("counter", [])
        }
        assert report_counters <= prom_counters
        # Values agree for the headline counter.
        inserts_sample = [
            value for name, labels, value in samples
            if name == "lmerge_inserts_in_total"
        ]
        assert inserts_sample
        assert int(inserts_sample[0]) == report.merge_stats["inserts_in"]


class TestStatsFlag:
    def test_stats_printed_by_default(self, workload, tmp_path, capsys):
        _, a, b = workload
        assert main([
            "merge", str(a), str(b), "-o", str(tmp_path / "m.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "stats:" in out
        assert "duplicates dropped" in out

    def test_no_stats_suppresses_summary(self, workload, tmp_path, capsys):
        _, a, b = workload
        assert main([
            "merge", str(a), str(b), "-o", str(tmp_path / "m.jsonl"),
            "--no-stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "stats:" not in out


class TestReportSubcommand:
    def test_renders_saved_report(self, instrumented, capsys):
        _, report_path, _, _ = instrumented
        assert main(["report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "Run report:" in out
        assert "frontier lag" in out
        assert "queue peaks" in out


class TestMergedOutputUnchanged:
    def test_instrumented_output_matches_uninstrumented(
        self, workload, instrumented, tmp_path
    ):
        """Observability must not change the merge's output stream."""
        from repro.streams.io import read_stream

        _, a, b = workload
        merged_instrumented, _, _, _ = instrumented
        plain = tmp_path / "plain.jsonl"
        assert main([
            "merge", str(a), str(b), "-o", str(plain), "--no-stats",
        ]) == 0
        assert (
            read_stream(plain).tdb()
            == read_stream(merged_instrumented).tdb()
        )
