"""CFG construction, dataflow solving, and shared-pass caching."""

import ast
import textwrap

from repro.analysis.flow import (
    ForwardAnalysis,
    build_cfg,
    context_for_source,
    receiver_text,
    shallow_walk,
    statement_tree,
)


def _cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    function = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(function)


def _find(cfg, needle):
    """(block_index, statement_index) of the statement matching *needle*.

    Compound statements (If/While) unparse to text containing their
    bodies, so prefer the tightest match — the statement itself, not an
    enclosing head.
    """
    candidates = []
    for block in cfg.blocks:
        for i, statement in enumerate(block.statements):
            text = ast.unparse(statement)
            if needle in text:
                candidates.append((len(text), block.index, i))
    if not candidates:
        raise AssertionError(f"statement {needle!r} not in CFG")
    _, block_index, statement_index = min(candidates)
    return block_index, statement_index


def _after(cfg, needle):
    block, index = _find(cfg, needle)
    return {ast.unparse(s).split("\n")[0] for s in cfg.statements_after(block, index)}


class TestCFGShape:
    def test_straight_line_single_block(self):
        cfg = _cfg(
            """
            def f():
                a = 1
                b = 2
                return a + b
            """
        )
        bodies = [b for b in cfg.blocks if b.statements]
        assert len(bodies) == 1

    def test_if_else_joins(self):
        cfg = _cfg(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                done = True
            """
        )
        # Both branches reach the join statement; neither reaches the other.
        assert "done = True" in _after(cfg, "a = 1")
        assert "done = True" in _after(cfg, "a = 2")
        assert "a = 2" not in _after(cfg, "a = 1")

    def test_while_loop_has_back_edge(self):
        cfg = _cfg(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        # The loop body may re-execute itself (back edge through the head).
        assert "n -= 1" in _after(cfg, "n -= 1")
        assert "return n" in _after(cfg, "n -= 1")

    def test_break_skips_rest_of_loop(self):
        cfg = _cfg(
            """
            def f(items):
                for item in items:
                    if item:
                        break
                    consume(item)
                after = True
            """
        )
        block, index = _find(cfg, "break")
        names = {
            ast.unparse(s) for s in cfg.statements_after(block, index)
        }
        assert "after = True" in names
        assert "consume(item)" not in names

    def test_return_cuts_block(self):
        cfg = _cfg(
            """
            def f(x):
                if x:
                    return 1
                tail = 2
            """
        )
        assert _after(cfg, "return 1") == set()

    def test_try_body_reaches_handler(self):
        cfg = _cfg(
            """
            def f():
                try:
                    risky()
                    more()
                except ValueError:
                    handled = True
                done = True
            """
        )
        # Conservative exception edges: every try-body statement may be
        # followed by the handler.
        assert "handled = True" in _after(cfg, "risky()")
        assert "handled = True" in _after(cfg, "more()")
        assert "done = True" in _after(cfg, "handled = True")

    def test_nested_loop_in_try_reaches_handler(self):
        cfg = _cfg(
            """
            def f(items):
                try:
                    for item in items:
                        use(item)
                except Exception:
                    cleanup()
            """
        )
        # Blocks allocated for the nested loop body are still part of
        # the protected region.
        assert "cleanup()" in _after(cfg, "use(item)")


class _AssignedNames(ForwardAnalysis):
    """Names definitely assigned on every path (must-analysis)."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a & b

    def transfer(self, state, statement):
        if isinstance(statement, ast.Assign):
            names = {
                t.id for t in statement.targets if isinstance(t, ast.Name)
            }
            return state | names
        return state


class TestForwardAnalysis:
    def test_branch_join_is_intersection(self):
        cfg = _cfg(
            """
            def f(x):
                common = 1
                if x:
                    left = 1
                else:
                    right = 1
                tail = 1
            """
        )
        _, statement_in = _AssignedNames().run(cfg)
        block, index = _find(cfg, "tail = 1")
        tail = cfg.blocks[block].statements[index]
        state = statement_in[id(tail)]
        assert "common" in state
        assert "left" not in state and "right" not in state

    def test_loop_reaches_fixpoint(self):
        cfg = _cfg(
            """
            def f(n):
                while n:
                    inside = 1
                after = 1
            """
        )
        _, statement_in = _AssignedNames().run(cfg)
        block, index = _find(cfg, "after = 1")
        state = statement_in[id(cfg.blocks[block].statements[index])]
        # The loop may run zero times: `inside` is not definitely assigned.
        assert "inside" not in state


class TestModuleContext:
    SOURCE = """
    import time

    class Box:
        def method(self):
            return 1

    def top(a, b):
        if a:
            return b
        return a
    """

    def test_walk_index_is_cached(self):
        ctx = context_for_source(textwrap.dedent(self.SOURCE))
        first = ctx.walk(ast.FunctionDef)
        second = ctx.walk(ast.FunctionDef)
        # One shared index: repeated walks return the same node objects.
        assert len(first) == len(second)
        assert all(a is b for a, b in zip(first, second))
        assert {f.name for f in first} == {"method", "top"}

    def test_cfg_cached_per_function(self):
        ctx = context_for_source(textwrap.dedent(self.SOURCE))
        fn = next(f.node for f in ctx.functions if f.node.name == "top")
        assert ctx.cfg(fn) is ctx.cfg(fn)
        assert ctx.cfg_builds == 1

    def test_enclosing_class(self):
        ctx = context_for_source(textwrap.dedent(self.SOURCE))
        by_name = {f.node.name: f.node for f in ctx.functions}
        assert ctx.enclosing_class(by_name["method"]) == "Box"
        assert ctx.enclosing_class(by_name["top"]) is None


class TestHelpers:
    def test_shallow_walk_if_sees_only_test(self):
        statement = ast.parse(
            "if cond():\n    body_call()\n"
        ).body[0]
        names = {
            node.func.id
            for node in shallow_walk(statement)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
        }
        assert names == {"cond"}

    def test_statement_tree_skips_nested_defs(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def outer():
                    a = 1
                    def inner():
                        hidden = 1
                    b = 2
                """
            )
        )
        statements = statement_tree(tree.body[0].body)
        text = [ast.unparse(s).split("\n")[0] for s in statements]
        assert "a = 1" in text and "b = 2" in text
        assert "hidden = 1" not in text

    def test_receiver_text_unwraps_calls_and_subscripts(self):
        expr = ast.parse("self.rings[0].buf").body[0].value
        assert receiver_text(expr) == "self.rings.buf"
