"""Tests for the theory module: Example 4 and the Section III-D worked
example (inputs I1, I2; candidate outputs O1, O2, O3)."""

from repro.temporal.elements import Close, Open
from repro.temporal.event import Event
from repro.temporal.tdb import TDB
from repro.theory.compatibility import (
    check_r3_compatibility,
    check_r4_conformance,
    is_r3_compatible,
)
from repro.theory.equivalence import (
    equivalent_prefixes,
    open_close_compatible,
    prefix_equivalent_open_close,
)
from repro.temporal.elements import Adjust, Insert
from repro.temporal.time import INFINITY


def tdb_with_stable(events, stable):
    tdb = TDB(events)
    tdb.stable_point = stable
    return tdb


class TestOpenCloseCompatibility:
    """Example 4: O[j] compatible with I[k] iff O[j] is a sub-multiset."""

    INPUT = [Open("A", 1), Open("B", 2), Close("A", 4)]

    def test_subset_is_compatible(self):
        assert open_close_compatible([Open("A", 1)], self.INPUT)

    def test_full_prefix_is_compatible(self):
        assert open_close_compatible(self.INPUT, self.INPUT)

    def test_empty_output_is_compatible(self):
        assert open_close_compatible([], self.INPUT)

    def test_extra_open_incompatible(self):
        assert not open_close_compatible([Open("C", 3)], self.INPUT)

    def test_divergent_close_incompatible(self):
        """An output close(p,Ve) not in the input can never be revised."""
        assert not open_close_compatible(
            [Open("A", 1), Close("A", 5)], self.INPUT
        )

    def test_union_of_inputs(self):
        """Against mutually consistent inputs, compatibility is containment
        in their union."""
        other_input = [Open("A", 1), Open("C", 3)]
        union = self.INPUT + other_input
        assert open_close_compatible([Open("C", 3), Open("B", 2)], union)

    def test_order_irrelevant(self):
        assert open_close_compatible(
            [Close("A", 4), Open("A", 1)], self.INPUT
        )


class TestPrefixEquivalence:
    def test_different_orders_equivalent(self):
        s = [Insert("A", 1, 4), Insert("B", 2, 5)]
        u = [Insert("B", 2, 5), Insert("A", 1, 4)]
        assert equivalent_prefixes(s, 2, u, 2)

    def test_different_lengths_equivalent(self):
        s = [Insert("A", 1, 4)]
        u = [Insert("A", 1, 9), Adjust("A", 1, 9, 4)]
        assert equivalent_prefixes(s, 1, u, 2)

    def test_not_equivalent(self):
        assert not equivalent_prefixes([Insert("A", 1, 4)], 1, [], 0)

    def test_open_close_variant(self):
        s = [Open("A", 1), Close("A", 4)]
        u = [Open("A", 1), Close("A", 9), Close("A", 4)]
        assert prefix_equivalent_open_close(s, u)


class TestSectionIIIDExample:
    """The worked example: O1 and O2 compatible with {I1, I2}; O3 not."""

    def setup_method(self):
        self.i1 = tdb_with_stable(
            [Event(2, "A", 16), Event(3, "B", 10), Event(4, "C", 18), Event(15, "D", 20)],
            stable=14,
        )
        self.i2 = tdb_with_stable(
            [Event(2, "A", 12), Event(3, "B", 10), Event(4, "C", 18), Event(17, "E", 21)],
            stable=11,
        )
        self.inputs = [self.i1, self.i2]

    def test_inputs_have_expected_statuses(self):
        from repro.temporal.event import FreezeStatus

        assert self.i1.status_of(Event(2, "A", 16)) is FreezeStatus.HALF_FROZEN
        assert self.i1.status_of(Event(3, "B", 10)) is FreezeStatus.FULLY_FROZEN
        assert self.i1.status_of(Event(15, "D", 20)) is FreezeStatus.UNFROZEN

    def test_o1_conservative_output_compatible(self):
        o1 = tdb_with_stable(
            [Event(2, "A", INFINITY), Event(3, "B", 10), Event(4, "C", INFINITY)],
            stable=11,
        )
        assert is_r3_compatible(self.inputs, o1)

    def test_o2_aggressive_output_compatible(self):
        o2 = tdb_with_stable(
            [
                Event(2, "A", 16),
                Event(3, "B", 10),
                Event(4, "C", 18),
                Event(15, "D", 20),
                Event(17, "E", 21),
            ],
            stable=14,
        )
        assert is_r3_compatible(self.inputs, o2)

    def test_o3_incompatible_for_both_reasons(self):
        o3 = tdb_with_stable(
            [Event(2, "A", 12), Event(4, "C", 18), Event(15, "D", 20)],
            stable=13,
        )
        violations = check_r3_compatibility(self.inputs, o3)
        conditions = {violation.condition for violation in violations}
        # Reason 1: <A,2,12> is FF in O3 but contradicts I1 (C2).
        assert "C2" in conditions
        # Reason 2: <B,3,10> is FF in the inputs but absent from O3 (C3).
        assert "C3" in conditions

    def test_c1_output_stable_beyond_inputs(self):
        output = tdb_with_stable([Event(3, "B", 10)], stable=15)
        violations = check_r3_compatibility(self.inputs, output)
        assert any(v.condition == "C1" for v in violations)

    def test_duplicate_key_in_output_rejected(self):
        output = tdb_with_stable(
            [Event(3, "B", 10), Event(3, "B", 12)], stable=11
        )
        violations = check_r3_compatibility(self.inputs, output)
        assert any(v.condition == "C2" for v in violations)

    def test_unfrozen_output_event_unconstrained(self):
        """C2: a UF output event is allowed even with no input support."""
        output = tdb_with_stable(
            [Event(3, "B", 10), Event(99, "Z", 120)], stable=11
        )
        # Z at Vs=99 is unfrozen (stable 11): no violation from it.
        violations = check_r3_compatibility(self.inputs, output)
        assert not [v for v in violations if v.key == (99, "Z")]

    def test_missing_ff_event_with_room_to_add_is_fine(self):
        """C3: output may lack an input-FF event while L <= its Vs."""
        output = tdb_with_stable([], stable=3)
        violations = check_r3_compatibility(self.inputs, output)
        assert not [v for v in violations if v.key == (3, "B")]
        # But B is FF in I1 with Ve=10 < L is false here (L=3 <= Vs=3): ok.

    def test_missing_ff_event_past_stable_violates(self):
        output = tdb_with_stable([], stable=11)
        violations = check_r3_compatibility(self.inputs, output)
        assert any(v.key == (3, "B") and v.condition == "C3" for v in violations)


class TestR4Conformance:
    def test_matching_multisets_conform(self):
        reference = tdb_with_stable(
            [Event(1, "A", 5), Event(1, "A", 5), Event(2, "B", 20)], stable=10
        )
        output = tdb_with_stable(
            [Event(1, "A", 5), Event(1, "A", 5), Event(2, "B", 30)], stable=10
        )
        # B is HF on both sides (count 1 each): Ve may differ.
        assert not check_r4_conformance([reference], output)

    def test_ff_count_mismatch_detected(self):
        reference = tdb_with_stable([Event(1, "A", 5), Event(1, "A", 5)], stable=10)
        output = tdb_with_stable([Event(1, "A", 5)], stable=10)
        assert check_r4_conformance([reference], output)

    def test_hf_count_mismatch_detected(self):
        reference = tdb_with_stable([Event(1, "A", 20), Event(1, "A", 30)], stable=10)
        output = tdb_with_stable([Event(1, "A", 20)], stable=10)
        assert check_r4_conformance([reference], output)

    def test_output_ahead_is_c1(self):
        reference = tdb_with_stable([], stable=5)
        output = tdb_with_stable([], stable=10)
        violations = check_r4_conformance([reference], output)
        assert violations and violations[0].condition == "C1"

    def test_lagging_output_not_checked(self):
        """Counts are only compared when L tracks max(Lm)."""
        reference = tdb_with_stable([Event(1, "A", 5)], stable=10)
        output = tdb_with_stable([], stable=0)
        assert not check_r4_conformance([reference], output)

    def test_no_inputs_is_trivially_fine(self):
        assert not check_r4_conformance([], TDB())
