"""Bounded model checker: exhaustive pass + mutations provably caught."""

import pytest

from repro.analysis.model import MUTATIONS, ModelParams, check_model


class TestBaseModel:
    def test_default_bounds_hold_all_properties(self):
        result = check_model(ModelParams())
        assert result.ok, result.render()
        assert result.violations == []
        assert result.states > 100
        assert result.transitions > result.states
        assert result.terminal_states > 0

    def test_exploration_is_deterministic(self):
        a = check_model(ModelParams())
        b = check_model(ModelParams())
        assert (a.states, a.transitions, a.terminal_states) == (
            b.states,
            b.transitions,
            b.terminal_states,
        )

    def test_ci_bounds_stay_exhaustive_and_clean(self):
        result = check_model(
            ModelParams(batches=6, ring_capacity=2, crashes=3)
        )
        assert result.ok, result.render()
        # Larger bounds explore strictly more behaviour.
        assert result.states > check_model(ModelParams()).states

    def test_no_crashes_degenerate_case(self):
        result = check_model(ModelParams(crashes=0))
        assert result.ok, result.render()

    def test_tiny_ring_does_not_deadlock(self):
        result = check_model(ModelParams(ring_capacity=1))
        assert result.ok, result.render()


class TestMutations:
    """Each seeded protocol bug must produce a counterexample — the
    properties are load-bearing, not vacuously true."""

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutation_is_caught(self, mutation):
        result = check_model(
            ModelParams(mutations=frozenset({mutation}))
        )
        assert not result.ok, f"{mutation} not caught"
        assert result.violations

    def test_counterexample_has_a_trace(self):
        result = check_model(
            ModelParams(mutations=frozenset({"no_dedup"}))
        )
        violation = result.violations[0]
        assert violation.trace, "counterexample without a trace"
        assert all(isinstance(step, str) for step in violation.trace)

    def test_no_replay_loses_output(self):
        result = check_model(
            ModelParams(mutations=frozenset({"no_replay"}))
        )
        properties = result.to_json()["properties"]
        assert not properties["exact_delivery"]


class TestParams:
    def test_out_of_range_batches_rejected(self):
        with pytest.raises(ValueError):
            check_model(ModelParams(batches=0))
        with pytest.raises(ValueError):
            check_model(ModelParams(batches=9))

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError):
            check_model(ModelParams(mutations=frozenset({"no_such"})))

    def test_params_json_roundtrip_fields(self):
        payload = ModelParams(
            batches=3, mutations=frozenset({"no_salvage"})
        ).to_json()
        assert payload["batches"] == 3
        assert payload["mutations"] == ["no_salvage"]


class TestReportShape:
    def test_json_schema(self):
        payload = check_model(ModelParams()).to_json()
        assert set(payload) >= {
            "params",
            "ok",
            "states",
            "transitions",
            "terminal_states",
            "properties",
            "violations",
        }
        assert set(payload["properties"]) == {
            "deadlock_free",
            "no_lost_terminal",
            "exact_delivery",
        }
        assert payload["ok"] is True
        assert all(payload["properties"].values())

    def test_render_mentions_verdict(self):
        text = check_model(ModelParams()).render()
        assert "deadlock" in text.lower()
        assert "states" in text.lower()
