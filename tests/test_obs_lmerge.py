"""Tests for LMerge-specific gauges (repro.obs.lmerge_obs)."""

import math

from repro.engine.operator import Operator
from repro.lmerge.feedback import FeedbackSignal
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.shard import shard
from repro.metrics.collector import merge_stats
from repro.obs.lmerge_obs import (
    LMergeObserver,
    ShardObserver,
    count_feedback,
    frontier_lag,
)
from repro.obs.registry import MetricRegistry
from repro.temporal.elements import Insert, Stable

from conftest import divergent_inputs, small_stream


class TestFrontierLag:
    def test_both_unpunctuated(self):
        assert frontier_lag(-math.inf, -math.inf) == 0.0

    def test_input_unpunctuated_behind_finite_output(self):
        assert frontier_lag(50.0, -math.inf) == math.inf

    def test_leading_input_clamps_to_zero(self):
        assert frontier_lag(10.0, 25.0) == 0.0

    def test_trailing_input(self):
        assert frontier_lag(25.0, 10.0) == 15.0


class TestLMergeObserver:
    def test_lag_gauges_match_hand_computed_scenario(self):
        """Scripted divergent inputs: input 0 punctuates to 30, input 1
        only to 10; the R3 merge's frontier is the max (30), so input 1
        lags by exactly 20 and input 0 leads at lag 0."""
        registry = MetricRegistry()
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        observer = LMergeObserver(merge, registry, bucket=1.0)

        for t in (1, 5, 9):
            element = Insert(f"p{t}", t, t + 100)
            merge.process(element, 0)
            merge.process(element, 1)
        merge.process(Stable(30), 0)
        merge.process(Stable(10), 1)
        assert merge.max_stable == 30

        lags = observer.sample(clock=6.0)
        assert lags == {0: 0.0, 1: 20.0}
        assert registry.gauge(
            "lmerge_frontier_lag", {"merge": merge.name, "input": 0}
        ).value == 0.0
        assert registry.gauge(
            "lmerge_frontier_lag", {"merge": merge.name, "input": 1}
        ).value == 20.0
        assert registry.gauge(
            "lmerge_output_frontier", {"merge": merge.name}
        ).value == 30
        # Leadership: input 0's stable point is ahead.
        assert registry.gauge(
            "lmerge_leading", {"merge": merge.name, "input": 0}
        ).value == 1
        assert registry.gauge(
            "lmerge_leading", {"merge": merge.name, "input": 1}
        ).value == 0

        # Advance input 1 past input 0; leadership and lag flip.
        merge.process(Stable(40), 1)
        lags = observer.sample(clock=7.0)
        assert lags == {0: 10.0, 1: 0.0}
        assert registry.gauge(
            "lmerge_leading", {"merge": merge.name, "input": 1}
        ).value == 1
        series = observer.lag_series()
        assert series["1"] == [[6.0, 20.0], [7.0, 0.0]]

    def test_infinite_lag_skipped_in_series(self):
        registry = MetricRegistry()
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        observer = LMergeObserver(merge, registry)
        merge.process(Insert("a", 1, 5), 0)
        merge.process(Stable(3), 0)  # input 1 never punctuated
        lags = observer.sample(clock=0.0)
        assert lags[1] == math.inf
        assert registry.gauge(
            "lmerge_frontier_lag", {"merge": merge.name, "input": 1}
        ).value == math.inf
        # The inf sample stays out of the plottable series.
        assert "1" not in observer.lag_series()

    def test_duplicate_elimination_from_stats_deltas(self):
        registry = MetricRegistry()
        reference = small_stream(count=200, blob=2)
        inputs = divergent_inputs(reference, n=2)
        merge = LMergeR3()
        observer = LMergeObserver(merge, registry)
        merge.merge_batched(inputs, schedule="sequential")
        observer.sample()
        stats = merge.stats
        assert registry.counter(
            "lmerge_inserts_in_total", {"merge": merge.name}
        ).value == stats.inserts_in
        expected_dropped = stats.inserts_in - stats.inserts_out
        assert registry.counter(
            "lmerge_duplicates_dropped_total", {"merge": merge.name}
        ).value == expected_dropped
        assert observer.duplicate_hit_rate() == (
            expected_dropped / stats.inserts_in
        )
        # Sampling again without new traffic adds nothing (delta-based).
        observer.sample()
        assert registry.counter(
            "lmerge_inserts_in_total", {"merge": merge.name}
        ).value == stats.inserts_in

    def test_feedback_emitted_counter(self):
        registry = MetricRegistry()
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        observer = LMergeObserver(merge, registry)
        merge.process(Insert("a", 1, 5), 0)
        merge.process(Insert("a", 1, 5), 1)
        merge.process(Stable(20), 0)
        # Output frontier advanced to 20 while input 1 sits at -inf: the
        # merge raises fast-forward feedback toward input 1.
        emitted = registry.counter(
            "lmerge_feedback_emitted_total", {"merge": merge.name, "input": 1}
        )
        assert emitted.value >= 1
        assert registry.gauge(
            "lmerge_feedback_horizon", {"merge": merge.name}
        ).value == 20
        assert observer is not None  # listener held by the merge

    def test_count_feedback_honored(self):
        registry = MetricRegistry()

        class Upstream(Operator):  # noqa: REP102 — feedback-only stub
            def on_insert(self, element, port):
                self.emit(element)

        upstream = count_feedback(Upstream("source"), registry)
        upstream.on_feedback(FeedbackSignal(horizon=10))
        upstream.on_feedback(FeedbackSignal(horizon=20))
        assert registry.counter(
            "lmerge_feedback_honored_total", {"op": "source"}
        ).value == 2


class TestShardObserver:
    def test_sharded_gauges_consistent_with_merge_stats(self):
        """A sharded run's registry counters must agree with the
        metrics.merge_stats fold of the per-shard MergeStats."""
        registry = MetricRegistry()
        reference = small_stream(count=300, blob=2)
        inputs = divergent_inputs(reference, n=2)
        plan = shard(LMergeR3, 2, backend="serial", registry=registry)
        plan.merge(inputs, schedule="sequential")
        aggregate = merge_stats(plan.shard_stats)
        assert aggregate.elements_in == plan.stats.elements_in

        total_in = sum(
            registry.counter(
                "shard_elements_in_total", {"merge": plan.name, "shard": s}
            ).value
            for s in range(2)
        )
        total_out = sum(
            registry.counter(
                "shard_elements_out_total", {"merge": plan.name, "shard": s}
            ).value
            for s in range(2)
        )
        assert total_in == aggregate.elements_in
        assert total_out == aggregate.elements_out

        # Frontier gauges: each shard's gauge holds its final frontier and
        # the combined emitted stable is their pointwise minimum.
        frontiers = [
            registry.gauge(
                "shard_frontier", {"merge": plan.name, "shard": s}
            ).value
            for s in range(2)
        ]
        assert tuple(frontiers) == plan.shard_frontiers
        assert registry.gauge(
            "shard_emitted_stable", {"merge": plan.name}
        ).value == plan.max_stable == min(frontiers)

    def test_cti_lag_vs_most_advanced_shard(self):
        class FakePlan:
            name = "fake"
            shard_frontiers = (10.0, 30.0, 25.0)
            max_stable = 10.0
            shard_stats = []

            def queue_depths(self):
                return [2, None, 0]

        registry = MetricRegistry()
        observer = ShardObserver(FakePlan(), registry)
        observer.sample()
        lag = lambda s: registry.gauge(  # noqa: E731
            "shard_cti_lag", {"merge": "fake", "shard": s}
        ).value
        assert lag(0) == 20.0  # trails the most advanced shard (30)
        assert lag(1) == 0.0
        assert lag(2) == 5.0
        assert registry.gauge(
            "shard_queue_depth", {"merge": "fake", "shard": 0}
        ).value == 2
        # Shard 1's depth is unknown (None) -> no gauge registered.
        assert registry.get(
            "shard_queue_depth", {"merge": "fake", "shard": 1}
        ) is None

    def test_queue_peak_tracks_maximum(self):
        class FakePlan:
            name = "fake"
            shard_frontiers = ()
            max_stable = 0.0
            shard_stats = []

            def __init__(self):
                self.depth = 0

            def queue_depths(self):
                return [self.depth]

        plan = FakePlan()
        registry = MetricRegistry()
        observer = ShardObserver(plan, registry)
        for depth in (3, 7, 2):
            plan.depth = depth
            observer.sample()
        peak = registry.gauge("shard_queue_peak", {"merge": "fake", "shard": 0})
        assert peak.value == 7
