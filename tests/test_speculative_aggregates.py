"""The SPECULATIVE aggregate mode: revisions driven by disorder only."""

import pytest

from repro.engine.operator import CollectorSink
from repro.operators.aggregate import (
    AggregateMode,
    GroupedCount,
    WindowedCount,
)
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Event
from repro.temporal.tdb import TDB
from repro.temporal.time import INFINITY

from conftest import small_stream


def run_through(operator, elements):
    sink = CollectorSink()
    operator.subscribe(sink)
    for element in elements:
        operator.receive(element, 0)
    return sink.stream


class TestSpeculativeWindowedCount:
    def test_window_emitted_when_surpassed(self):
        out = run_through(
            WindowedCount(10, AggregateMode.SPECULATIVE),
            [Insert("a", 1, 5), Insert("b", 12, 15)],
        )
        # Window [0,10) was finalized the moment window [10,20) opened.
        assert list(out) == [Insert(1, 0, 10)]

    def test_in_order_stream_never_revises(self):
        stream = small_stream(count=500, seed=170, disorder=0.0)
        out = run_through(WindowedCount(100, AggregateMode.SPECULATIVE), stream)
        assert out.count_adjusts() == 0

    def test_straggler_costs_one_revision(self):
        out = run_through(
            WindowedCount(10, AggregateMode.SPECULATIVE),
            [
                Insert("a", 1, 5),
                Insert("b", 12, 15),  # finalizes window 0 at count 1
                Insert("late", 3, 8),  # straggler into window 0
                Stable(INFINITY),
            ],
        )
        elements = list(out)
        assert Adjust(1, 0, 10, 0) in elements  # cancel the stale count
        assert out.tdb().count(Event(0, 2, 10)) == 1

    def test_straggler_into_never_emitted_window(self):
        """A straggler landing in an empty window behind the frontier
        emits that window immediately."""
        out = run_through(
            WindowedCount(10, AggregateMode.SPECULATIVE),
            [Insert("a", 25, 28), Insert("late", 3, 8), Stable(INFINITY)],
        )
        tdb = out.tdb()
        assert Event(0, 1, 10) in tdb
        assert Event(20, 1, 30) in tdb

    def test_input_cancel_revises_emitted_window(self):
        out = run_through(
            WindowedCount(10, AggregateMode.SPECULATIVE),
            [
                Insert("a", 1, 5),
                Insert("b", 3, 8),
                Insert("c", 15, 18),  # emits window 0 at count 2
                Adjust("a", 1, 5, 1),  # source cancels event a
                Stable(INFINITY),
            ],
        )
        assert out.tdb().count(Event(0, 1, 10)) == 1
        assert out.tdb().count(Event(0, 2, 10)) == 0

    def test_cancel_to_zero_removes_window_event(self):
        out = run_through(
            WindowedCount(10, AggregateMode.SPECULATIVE),
            [
                Insert("a", 1, 5),
                Insert("b", 15, 18),  # emits window 0 at count 1
                Adjust("a", 1, 5, 1),  # cancel the only member
                Stable(INFINITY),
            ],
        )
        assert not [e for e in out.tdb() if e.vs == 0]

    def test_stable_emits_trailing_window(self):
        out = run_through(
            WindowedCount(10, AggregateMode.SPECULATIVE),
            [Insert("a", 1, 5), Stable(INFINITY)],
        )
        assert out.tdb() == TDB([Event(0, 1, 10)])

    @pytest.mark.parametrize("disorder", [0.0, 0.2, 0.5])
    def test_equivalent_to_conservative(self, disorder):
        stream = small_stream(count=600, seed=171, disorder=disorder)
        conservative = run_through(WindowedCount(100), stream)
        speculative = run_through(
            WindowedCount(100, AggregateMode.SPECULATIVE), stream
        )
        speculative.tdb()  # valid stream
        assert conservative.tdb() == speculative.tdb()


class TestSpeculativeGroupedCount:
    def make(self):
        return GroupedCount(
            10, key_fn=lambda p: p[0], mode=AggregateMode.SPECULATIVE
        )

    def test_straggler_new_group(self):
        """A straggler creating a *new* group in an emitted window emits
        an insert, not a revision."""
        out = run_through(
            self.make(),
            [
                Insert(("g1", 0), 1, 5),
                Insert(("g1", 1), 15, 18),  # finalizes window 0
                Insert(("g2", 2), 3, 8),  # straggler: new group in window 0
                Stable(INFINITY),
            ],
        )
        tdb = out.tdb()
        assert Event(0, ("g1", 1), 10) in tdb
        assert Event(0, ("g2", 1), 10) in tdb

    def test_straggler_existing_group_revises(self):
        out = run_through(
            self.make(),
            [
                Insert(("g1", 0), 1, 5),
                Insert(("g1", 1), 15, 18),
                Insert(("g1", 2), 3, 8),  # straggler into g1
                Stable(INFINITY),
            ],
        )
        assert out.tdb().count(Event(0, ("g1", 2), 10)) == 1

    def test_cancel_in_emitted_window(self):
        out = run_through(
            self.make(),
            [
                Insert(("g1", 0), 1, 5),
                Insert(("g1", 1), 15, 18),
                Adjust(("g1", 0), 1, 5, 1),  # cancel g1's only window-0 member
                Stable(INFINITY),
            ],
        )
        assert not [e for e in out.tdb() if e.vs == 0]

    @pytest.mark.parametrize("disorder", [0.0, 0.3])
    def test_equivalent_to_conservative(self, disorder):
        stream = small_stream(count=500, seed=172, disorder=disorder)
        conservative = run_through(
            GroupedCount(100, key_fn=lambda p: p[0] % 6), stream
        )
        speculative = run_through(
            GroupedCount(
                100, key_fn=lambda p: p[0] % 6, mode=AggregateMode.SPECULATIVE
            ),
            stream,
        )
        assert conservative.tdb() == speculative.tdb()

    def test_memory_accounts_emitted_state(self):
        operator = self.make()
        run_through(
            operator,
            [Insert(("g1", 0), 1, 5), Insert(("g1", 1), 15, 18)],
        )
        assert operator.memory_bytes() > 0
        operator.on_stable(INFINITY, 0)
        assert operator.memory_bytes() == 0


class TestSpeculativeMergesAcrossReplicas:
    def test_divergent_speculative_replicas_merge(self):
        from repro.lmerge.r3 import LMergeR3
        from repro.streams.divergence import diverge

        reference = small_stream(count=500, seed=173, disorder=0.3)
        outputs = []
        for seed in range(3):
            operator = GroupedCount(
                100, key_fn=lambda p: p[0] % 5, mode=AggregateMode.SPECULATIVE
            )
            outputs.append(
                run_through(operator, diverge(reference, seed=seed))
            )
        merge = LMergeR3()
        merged = merge.merge(outputs, schedule="random", seed=2)
        assert merged.tdb() == outputs[0].tdb()
