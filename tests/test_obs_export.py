"""Tests for exporters (repro.obs.export): Prometheus text, JSONL, and
the RunReport artifact."""

import io
import json
import math
import re

from repro.lmerge.r3 import LMergeR3
from repro.obs.export import (
    RunReport,
    instrument_value,
    prometheus_text,
    write_jsonl,
)
from repro.obs.lmerge_obs import LMergeObserver
from repro.obs.registry import MetricRegistry
from repro.obs.trace import RingTracer

from conftest import divergent_inputs, small_stream

# One Prometheus sample line: name{labels} value
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"           # metric name
    r"(?:\{([^}]*)\})?"                       # optional label set
    r" (-?\d+(?:\.\d+)?(?:e-?\d+)?|[+-]Inf|NaN)$"  # value
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text, helps=None):
    """Parse exposition text into ({name: type}, [(name, labels, value)]).

    Pass a dict as *helps* to also collect ``# HELP`` lines into it.
    """
    types = {}
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, prom_type = line.split(" ")
            types[name] = prom_type
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            if helps is not None:
                helps[name] = help_text
            continue
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, label_blob, value = match.groups()
        labels = dict(_LABEL.findall(label_blob)) if label_blob else {}
        samples.append((name, labels, value))
    return types, samples


class TestPrometheusText:
    def test_counters_and_gauges(self):
        registry = MetricRegistry()
        registry.counter("events_total", {"op": "merge"}).inc(41)
        registry.gauge("depth").set(2.5)
        types, samples = parse_prometheus(prometheus_text(registry))
        assert types["events_total"] == "counter"
        assert types["depth"] == "gauge"
        assert ("events_total", {"op": "merge"}, "41") in samples
        assert ("depth", {}, "2.5") in samples

    def test_infinite_gauge_renders_as_prometheus_inf(self):
        registry = MetricRegistry()
        registry.gauge("frontier").set(-math.inf)
        types, samples = parse_prometheus(prometheus_text(registry))
        assert ("frontier", {}, "-Inf") in samples

    def test_histogram_as_summary(self):
        registry = MetricRegistry()
        h = registry.histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        types, samples = parse_prometheus(prometheus_text(registry))
        assert types["lat"] == "summary"
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert ("lat_count", [({}, "3")]) in by_name.items()
        assert by_name["lat_sum"] == [({}, "6.0")]
        quantiles = {labels["quantile"] for labels, _ in by_name["lat"]}
        assert quantiles == {"0.5", "0.9", "0.99"}

    def test_timeseries_total_as_counter(self):
        registry = MetricRegistry()
        registry.timeseries("lag", {"input": 0}).record(-3.0, 7)
        types, samples = parse_prometheus(prometheus_text(registry))
        assert types["lag_total"] == "counter"
        assert ("lag_total", {"input": "0"}, "7") in samples

    def test_label_escaping(self):
        registry = MetricRegistry()
        registry.counter("c", {"path": 'a"b\\c'}).inc()
        text = prometheus_text(registry)
        (line,) = [l for l in text.splitlines() if not l.startswith("#")]
        assert _SAMPLE.match(line)
        assert r"a\"b\\c" in line

    def test_empty_registry(self):
        assert prometheus_text(MetricRegistry()) == ""

    def test_type_line_emitted_once_per_name(self):
        registry = MetricRegistry()
        registry.counter("c", {"k": "a"}).inc()
        registry.counter("c", {"k": "b"}).inc()
        text = prometheus_text(registry)
        assert text.count("# TYPE c counter") == 1

    def test_help_line_before_type(self):
        registry = MetricRegistry()
        registry.counter("events_total", help="Elements seen.").inc(3)
        registry.gauge("depth").set(1)  # no help: no HELP line
        text = prometheus_text(registry)
        helps = {}
        parse_prometheus(text, helps)
        assert helps == {"events_total": "Elements seen."}
        lines = text.splitlines()
        assert lines.index("# HELP events_total Elements seen.") == (
            lines.index("# TYPE events_total counter") - 1
        )
        assert "# HELP depth" not in text

    def test_help_line_emitted_once_and_escaped(self):
        registry = MetricRegistry()
        registry.counter("c", {"k": "a"}, help="line\nbreak \\ slash").inc()
        registry.counter("c", {"k": "b"}).inc()
        text = prometheus_text(registry)
        assert text.count("# HELP c ") == 1
        assert r"line\nbreak \\ slash" in text

    def test_help_on_summary_and_timeseries(self):
        registry = MetricRegistry()
        registry.histogram("lat", help="Span latency.").observe(1.0)
        registry.timeseries("lag", help="Lag series.").record(0.0, 2)
        helps = {}
        parse_prometheus(prometheus_text(registry), helps)
        assert helps["lat"] == "Span latency."
        assert helps["lag_total"] == "Lag series."


class TestWriteJsonl:
    def test_sanitizes_infinities(self):
        buffer = io.StringIO()
        count = write_jsonl(
            [{"t": math.inf, "n": 1}, {"t": -math.inf}], buffer
        )
        assert count == 2
        rows = [json.loads(l) for l in buffer.getvalue().splitlines()]
        assert rows[0] == {"t": "inf", "n": 1}
        assert rows[1] == {"t": "-inf"}


class TestRunReport:
    def _instrumented_run(self):
        registry = MetricRegistry()
        tracer = RingTracer(capacity=128)
        merge = LMergeR3().set_tracer(tracer)
        observer = LMergeObserver(merge, registry, bucket=50.0)
        reference = small_stream(count=200, blob=2)
        inputs = divergent_inputs(reference, n=2)
        for stream_id in range(len(inputs)):
            merge.attach(stream_id)
        processed = 0
        from repro.lmerge.base import interleave

        for element, stream_id in interleave(inputs, "round_robin", 0):
            merge.process(element, stream_id)
            processed += 1
            if processed % 50 == 0:
                observer.sample(clock=processed)
        observer.sample(clock=processed)
        return merge, registry, observer, tracer

    def test_build_folds_all_sources(self):
        merge, registry, observer, tracer = self._instrumented_run()
        report = RunReport.build(
            merge=merge,
            registry=registry,
            observer=observer,
            tracer=tracer,
            wall_seconds=2.0,
            inputs=["a.jsonl", "b.jsonl"],
        )
        assert report.algorithm == merge.algorithm
        assert report.algorithm.startswith("LMR3")
        assert report.elements_in == merge.stats.elements_in
        assert report.throughput_eps == merge.stats.elements_in / 2.0
        assert report.merge_stats == merge.stats.as_dict()
        assert set(report.frontier_lag) == {"0", "1"}
        assert all(report.frontier_lag[k] for k in report.frontier_lag)
        assert report.trace["recorded"] == tracer.recorded
        assert report.metrics["counter"]  # registry snapshot present

    def test_save_load_round_trip(self, tmp_path):
        merge, registry, observer, tracer = self._instrumented_run()
        report = RunReport.build(
            merge=merge, registry=registry, observer=observer,
            wall_seconds=1.0,
        )
        path = report.save(tmp_path / "report.json")
        json.loads(path.read_text())  # valid JSON on disk
        loaded = RunReport.load(path)
        assert loaded == report

    def test_from_json_ignores_unknown_fields(self):
        report = RunReport.from_json(
            '{"algorithm": "LMR0", "someday_a_new_field": 1}'
        )
        assert report.algorithm == "LMR0"

    def test_render_mentions_key_sections(self):
        merge, registry, observer, tracer = self._instrumented_run()
        report = RunReport.build(
            merge=merge, registry=registry, observer=observer,
            tracer=tracer, wall_seconds=1.0,
        )
        report.queue_peaks = {"edge0": 12}
        text = report.render()
        assert "LMR3" in text
        assert "throughput" in text
        assert "frontier lag" in text
        assert "queue peaks" in text
        assert "duplicate hit rate" in text

    def test_render_empty_report(self):
        text = RunReport().render()
        assert "unknown algorithm" in text  # renders, no crash


class TestInstrumentValue:
    def test_subset_label_match(self):
        registry = MetricRegistry()
        registry.counter("hits", {"op": "x", "shard": "0"}).inc(5)
        report = RunReport(metrics=registry.snapshot())
        assert instrument_value(report, "counter", "hits", op="x") == 5
        assert instrument_value(report, "counter", "hits", op="y") is None
        assert instrument_value(report, "gauge", "hits") is None
