"""Tests for LMerge output policies (Section V-A) — including the
Table II chattiness/latency spectrum."""

import pytest

from repro.lmerge.policies import (
    CONSERVATIVE_POLICY,
    DEFAULT_POLICY,
    EAGER_POLICY,
    AdjustPropagation,
    InsertPropagation,
    OutputPolicy,
)
from repro.lmerge.r3 import LMergeR3
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Event
from repro.temporal.tdb import TDB

from conftest import divergent_inputs, small_stream


# Table II inputs: In1 and In2 (a/m/f translated to insert/adjust/stable).
IN1 = PhysicalStream(
    [
        Insert("A", 6, 10),
        Adjust("A", 6, 10, 12),
        Insert("B", 7, 14),
        Adjust("A", 6, 12, 15),
        Stable(16),
    ],
    name="In1",
)
IN2 = PhysicalStream(
    [
        Insert("A", 6, 12),
        Insert("B", 7, 14),
        Adjust("A", 6, 12, 15),
        Stable(16),
    ],
    name="In2",
)
FINAL = TDB([Event(6, "A", 15), Event(7, "B", 14)])


def merge_table2(policy):
    merge = LMergeR3(policy=policy)
    output = merge.merge([IN1, IN2], schedule="round_robin")
    assert output.tdb() == FINAL
    return merge


class TestTable2PolicySpectrum:
    """Out1 (aggressive/eager), Out2 (conservative), Out3 (hybrid) all
    reach the same TDB with different chattiness/latency trade-offs."""

    def test_all_policies_reach_final_tdb(self):
        for policy in (DEFAULT_POLICY, EAGER_POLICY, CONSERVATIVE_POLICY):
            merge_table2(policy)

    def test_eager_is_chattier_than_lazy(self):
        eager = merge_table2(EAGER_POLICY)
        lazy = merge_table2(DEFAULT_POLICY)
        assert eager.stats.adjusts_out >= lazy.stats.adjusts_out
        assert eager.stats.adjusts_out > 0

    def test_conservative_emits_fewest_elements(self):
        conservative = merge_table2(CONSERVATIVE_POLICY)
        eager = merge_table2(EAGER_POLICY)
        assert conservative.stats.elements_out <= eager.stats.elements_out

    def test_conservative_emits_later(self):
        """Out2's latency cost: nothing before the first punctuation."""
        merge = LMergeR3(policy=CONSERVATIVE_POLICY)
        merge.attach(0)
        merge.attach(1)
        merge.process(Insert("A", 6, 10), 0)
        merge.process(Insert("A", 6, 12), 1)
        assert merge.stats.inserts_out == 0  # withheld until half frozen
        merge.process(Stable(16), 0)
        assert merge.stats.inserts_out == 1

    def test_default_emits_immediately(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.process(Insert("A", 6, 10), 0)
        assert merge.stats.inserts_out == 1


class TestQuorumPolicy:
    def test_quorum_waits_for_fraction(self):
        policy = OutputPolicy(
            insert=InsertPropagation.QUORUM, quorum_fraction=0.5
        )
        merge = LMergeR3(policy=policy)
        for stream_id in range(4):
            merge.attach(stream_id)
        merge.process(Insert("A", 6, 10), 0)
        assert merge.stats.inserts_out == 0  # 1 of 4 < quorum (2)
        merge.process(Insert("A", 6, 10), 1)
        assert merge.stats.inserts_out == 1  # quorum reached

    def test_quorum_of_one_behaves_like_first(self):
        policy = OutputPolicy(
            insert=InsertPropagation.QUORUM, quorum_fraction=0.01
        )
        merge = LMergeR3(policy=policy)
        merge.attach(0)
        merge.attach(1)
        merge.process(Insert("A", 6, 10), 0)
        assert merge.stats.inserts_out == 1

    def test_quorum_needed_computation(self):
        policy = OutputPolicy(
            insert=InsertPropagation.QUORUM, quorum_fraction=0.5
        )
        assert policy.quorum_needed(4) == 2
        assert policy.quorum_needed(5) == 3
        assert policy.quorum_needed(1) == 1

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            OutputPolicy(quorum_fraction=0.0)
        with pytest.raises(ValueError):
            OutputPolicy(quorum_fraction=1.5)

    def test_quorum_equivalence_end_to_end(self):
        reference = small_stream(count=300, seed=31)
        inputs = divergent_inputs(reference, n=4, speculate_fraction=0.3)
        policy = OutputPolicy(
            insert=InsertPropagation.QUORUM, quorum_fraction=0.75
        )
        merge = LMergeR3(policy=policy)
        output = merge.merge(inputs, schedule="round_robin")
        assert output.tdb() == reference.tdb()


class TestLeadingPolicy:
    def test_only_leader_inserts_propagate_eagerly(self):
        policy = OutputPolicy(insert=InsertPropagation.LEADING)
        merge = LMergeR3(policy=policy)
        merge.attach(0)
        merge.attach(1)
        merge.process(Stable(1), 0)  # stream 0 leads
        merge.process(Insert("A", 6, 10), 1)
        assert merge.stats.inserts_out == 0
        merge.process(Insert("B", 7, 10), 0)
        assert merge.stats.inserts_out == 1

    def test_leading_equivalence_end_to_end(self):
        reference = small_stream(count=300, seed=32, stable_freq=0.1)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=0.2)
        merge = LMergeR3(policy=OutputPolicy(insert=InsertPropagation.LEADING))
        output = merge.merge(inputs, schedule="round_robin")
        assert output.tdb() == reference.tdb()


class TestConservativeNeverFullyDeletes:
    def test_no_cancels_on_output(self):
        """Half-frozen-support policy never removes an emitted event."""
        reference = small_stream(count=400, seed=33, stable_freq=0.08)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=0.4)
        merge = LMergeR3(policy=CONSERVATIVE_POLICY)
        output = merge.merge(inputs, schedule="random", seed=3)
        assert output.tdb() == reference.tdb()
        cancels = [
            e
            for e in output
            if isinstance(e, Adjust) and e.is_cancel
        ]
        assert not cancels


class TestEagerPolicyEquivalence:
    def test_end_to_end(self):
        reference = small_stream(count=400, seed=34)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=0.5)
        merge = LMergeR3(policy=EAGER_POLICY)
        output = merge.merge(inputs, schedule="random", seed=4)
        assert output.tdb() == reference.tdb()
