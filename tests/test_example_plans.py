"""Acceptance gate: static inference == dynamic observation per plan.

For every plan in ``examples/plans.py`` the restriction the analyzer
infers at each LMerge site must match what :class:`PropertyChecker`
observes when the plan actually runs.
"""

import pathlib

import pytest

from repro.analysis.cli import load_plan_catalog
from repro.analysis.propflow import VERDICT_EXACT, check_plan

PLANS_FILE = str(
    pathlib.Path(__file__).resolve().parent.parent / "examples" / "plans.py"
)

_CATALOG = load_plan_catalog(PLANS_FILE)

EXPECTED = {
    "ordered_sources_r0": "R0",
    "topk_r1": "R1",
    "grouped_r2": "R2",
    "speculative_r3": "R3",
    "noninjective_r4": "R4",
    "partitioned_r3": "R3",
}


def test_catalog_covers_every_restriction():
    assert set(_CATALOG) == set(EXPECTED)


@pytest.mark.parametrize("name", sorted(_CATALOG))
def test_static_inference_matches_dynamic_observation(name):
    plan = _CATALOG[name]()
    try:
        # Static: the selector's choice is exactly what propflow infers.
        report = check_plan(*plan.replicas, plan=name)
        assert report.sites, f"{name}: no merge sites discovered"
        for site in report.sites:
            assert site.verdict == VERDICT_EXACT, site.message
            assert site.inferred.name == EXPECTED[name]
        assert report.ok

        # Dynamic: run through PropertyChecker wrappers; the live streams
        # must exhibit the inferred restriction (checkers raise on any
        # declared-property violation along the way).
        observed = plan.run_checked()
        assert observed is plan.inferred
        assert observed.name == EXPECTED[name]
    finally:
        plan.close()
