"""Tests for the symmetric temporal join."""


from repro.engine.operator import CollectorSink
from repro.operators.join import TemporalJoin
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Event
from repro.temporal.tdb import TDB
from repro.temporal.time import INFINITY


def make_join(**kwargs):
    join = TemporalJoin(**kwargs)
    sink = CollectorSink()
    join.subscribe(sink)
    return join, sink


class TestMatching:
    def test_overlap_produces_intersection(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 10), TemporalJoin.LEFT)
        join.receive(Insert("R", 5, 15), TemporalJoin.RIGHT)
        assert list(sink.stream)[-1] == Insert(("L", "R"), 5, 10)

    def test_no_overlap_no_match(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 5), TemporalJoin.LEFT)
        join.receive(Insert("R", 5, 15), TemporalJoin.RIGHT)
        assert len(sink.stream) == 0

    def test_containment(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 100), TemporalJoin.LEFT)
        join.receive(Insert("R", 10, 20), TemporalJoin.RIGHT)
        assert list(sink.stream)[-1] == Insert(("L", "R"), 10, 20)

    def test_many_to_many(self):
        join, sink = make_join()
        join.receive(Insert("L1", 0, 10), TemporalJoin.LEFT)
        join.receive(Insert("L2", 2, 12), TemporalJoin.LEFT)
        join.receive(Insert("R", 5, 15), TemporalJoin.RIGHT)
        assert sink.stream.count_inserts() == 2

    def test_predicate_filters_pairs(self):
        join, sink = make_join(predicate=lambda l, r: l == r)
        join.receive(Insert("x", 0, 10), TemporalJoin.LEFT)
        join.receive(Insert("y", 0, 10), TemporalJoin.RIGHT)
        assert len(sink.stream) == 0
        join.receive(Insert("x", 0, 10), TemporalJoin.RIGHT)
        assert sink.stream.count_inserts() == 1

    def test_custom_combine(self):
        join, sink = make_join(combine=lambda l, r: l + r)
        join.receive(Insert(1, 0, 10), TemporalJoin.LEFT)
        join.receive(Insert(2, 0, 10), TemporalJoin.RIGHT)
        assert list(sink.stream)[0].payload == 3


class TestRevisions:
    def test_shrinking_input_shrinks_match(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 10), TemporalJoin.LEFT)
        join.receive(Insert("R", 0, 20), TemporalJoin.RIGHT)
        join.receive(Adjust("L", 0, 10, 6), TemporalJoin.LEFT)
        assert sink.stream.tdb() == TDB([Event(0, ("L", "R"), 6)])

    def test_shrinking_to_empty_cancels_match(self):
        join, sink = make_join()
        join.receive(Insert("L", 5, 10), TemporalJoin.LEFT)
        join.receive(Insert("R", 0, 20), TemporalJoin.RIGHT)
        join.receive(Adjust("R", 0, 20, 5), TemporalJoin.RIGHT)
        assert len(sink.stream.tdb()) == 0

    def test_growing_input_creates_new_match(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 5), TemporalJoin.LEFT)
        join.receive(Insert("R", 5, 15), TemporalJoin.RIGHT)
        assert len(sink.stream) == 0
        join.receive(Adjust("L", 0, 5, 8), TemporalJoin.LEFT)
        assert sink.stream.tdb() == TDB([Event(5, ("L", "R"), 8)])

    def test_growing_input_extends_match(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 10), TemporalJoin.LEFT)
        join.receive(Insert("R", 0, 20), TemporalJoin.RIGHT)
        join.receive(Adjust("L", 0, 10, 15), TemporalJoin.LEFT)
        assert sink.stream.tdb() == TDB([Event(0, ("L", "R"), 15)])

    def test_cancel_input_cancels_matches(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 10), TemporalJoin.LEFT)
        join.receive(Insert("R", 0, 20), TemporalJoin.RIGHT)
        join.receive(Adjust("L", 0, 10, 0), TemporalJoin.LEFT)
        assert len(sink.stream.tdb()) == 0

    def test_output_stream_always_valid(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 10), TemporalJoin.LEFT)
        join.receive(Insert("R", 0, 20), TemporalJoin.RIGHT)
        join.receive(Adjust("L", 0, 10, 6), TemporalJoin.LEFT)
        join.receive(Adjust("L", 0, 6, 12), TemporalJoin.LEFT)
        join.receive(Stable(INFINITY), TemporalJoin.LEFT)
        join.receive(Stable(INFINITY), TemporalJoin.RIGHT)
        sink.stream.tdb()  # strict reconstitution


class TestPunctuationAndState:
    def test_stable_is_min_of_sides(self):
        join, sink = make_join()
        join.receive(Stable(10), TemporalJoin.LEFT)
        assert sink.stream.count_stables() == 0
        join.receive(Stable(6), TemporalJoin.RIGHT)
        assert list(sink.stream)[-1] == Stable(6)

    def test_state_purged_after_freeze(self):
        join, sink = make_join()
        join.receive(Insert("L", 0, 10), TemporalJoin.LEFT)
        join.receive(Insert("R", 0, 10), TemporalJoin.RIGHT)
        assert join.memory_bytes() > 0
        join.receive(Stable(20), TemporalJoin.LEFT)
        join.receive(Stable(20), TemporalJoin.RIGHT)
        assert join.memory_bytes() == 0

    def test_properties_keyed_when_inputs_keyed(self):
        keyed = StreamProperties(key_vs_payload=True)
        join = TemporalJoin()
        assert join.derive_properties([keyed, keyed]).key_vs_payload
        assert not join.derive_properties(
            [keyed, StreamProperties.unknown()]
        ).key_vs_payload
