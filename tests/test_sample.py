"""Deterministic sampling operator."""

import pytest

from repro.engine.operator import CollectorSink
from repro.lmerge.r3 import LMergeR3
from repro.operators.sample import Sample
from repro.streams.divergence import diverge
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert, Stable

from conftest import small_stream


def run_through(operator, elements):
    sink = CollectorSink()
    operator.subscribe(sink)
    for element in elements:
        operator.receive(element, 0)
    return sink.stream


class TestSampling:
    def test_fraction_zero_drops_all(self):
        out = run_through(Sample(0.0), [Insert(i, i, i + 1) for i in range(50)])
        assert out.count_inserts() == 0

    def test_fraction_one_keeps_all(self):
        out = run_through(Sample(1.0), [Insert(i, i, i + 1) for i in range(50)])
        assert out.count_inserts() == 50

    def test_fraction_roughly_honoured(self):
        operator = Sample(0.25, seed=3)
        run_through(
            operator, [Insert(i, i, i + 1) for i in range(2000)]
        )
        assert 0.18 < operator.kept / 2000 < 0.32

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            Sample(1.5)

    def test_stables_always_pass(self):
        out = run_through(Sample(0.0), [Stable(5)])
        assert out.count_stables() == 1

    def test_adjust_follows_event_decision(self):
        operator = Sample(0.5, seed=1)
        elements = []
        for i in range(100):
            elements.append(Insert(i, i, i + 10))
            elements.append(Adjust(i, i, i + 10, i + 20))
        out = run_through(operator, elements)
        inserted = {e.payload for e in out if isinstance(e, Insert)}
        adjusted = {e.payload for e in out if isinstance(e, Adjust)}
        assert inserted == adjusted  # never an orphan revision

    def test_output_stream_valid(self):
        stream = small_stream(count=400, seed=97)
        out = run_through(Sample(0.4, seed=2), stream)
        out.tdb()  # strict


class TestReplicaConsistency:
    def test_same_decision_across_replicas(self):
        """The design requirement: replicas sampling divergent
        presentations of one logical stream stay logically consistent."""
        reference = small_stream(count=500, seed=98, disorder=0.3)
        inputs = [diverge(reference, seed=i, speculate_fraction=0.3) for i in range(3)]
        sampled = [run_through(Sample(0.5, seed=9), stream) for stream in inputs]
        tdbs = [stream.tdb() for stream in sampled]
        assert tdbs[0] == tdbs[1] == tdbs[2]

    def test_sampled_replicas_merge_correctly(self):
        reference = small_stream(count=500, seed=99, disorder=0.3)
        inputs = [diverge(reference, seed=i) for i in range(3)]
        sampled = [run_through(Sample(0.5, seed=9), stream) for stream in inputs]
        merge = LMergeR3()
        output = merge.merge(sampled, schedule="random", seed=5)
        assert output.tdb() == sampled[0].tdb()

    def test_different_seed_different_sample(self):
        stream = small_stream(count=300, seed=100)
        first = run_through(Sample(0.5, seed=1), stream)
        second = run_through(Sample(0.5, seed=2), stream)
        assert first.tdb() != second.tdb()

    def test_properties_preserved(self):
        strong = StreamProperties.strongest()
        assert Sample(0.5).derive_properties([strong]) == strong
