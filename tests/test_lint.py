"""Positive and negative fixtures for every repo lint rule."""

import textwrap

from repro.analysis.lint import (
    RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    lint_paths,
    lint_source,
)

HOT = "src/repro/operators/example.py"
COLD = "benchmarks/example.py"


def _lint(source, path=HOT, rules=None):
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


def _rule_ids(findings):
    return [finding.rule for finding in findings]


class TestWallClock:
    def test_positive_time_time(self):
        findings = _lint(
            """
            import time

            def on_insert(self, element, port):
                stamp = time.time()
            """
        )
        assert _rule_ids(findings) == ["REP101"]
        assert findings[0].severity == SEVERITY_ERROR

    def test_positive_datetime_now_and_from_import(self):
        findings = _lint(
            """
            import datetime
            from time import time

            def a():
                return datetime.datetime.now()

            def b():
                return time()
            """
        )
        assert _rule_ids(findings) == ["REP101", "REP101"]

    def test_negative_perf_counter_allowed(self):
        assert not _lint(
            """
            import time

            def measure():
                return time.perf_counter()
            """
        )

    def test_negative_outside_hot_paths(self):
        assert not _lint(
            """
            import time

            def anywhere():
                return time.time()
            """,
            path=COLD,
        )


class TestOnStable:
    def test_positive_data_without_punctuation(self):
        findings = _lint(
            """
            class Leaky(Operator):
                def on_insert(self, element, port):
                    self.emit(element)
            """
        )
        assert _rule_ids(findings) == ["REP102"]

    def test_negative_with_on_stable(self):
        assert not _lint(
            """
            class Fine(Operator):
                def on_insert(self, element, port):
                    self.emit(element)

                def on_stable(self, vc, port):
                    self.emit_stable(vc)
            """
        )

    def test_negative_receive_override(self):
        assert not _lint(
            """
            class Bridge(Operator):
                def receive(self, element, port=0):
                    self.forward(element)
            """
        )

    def test_negative_output_only_operator(self):
        # Sources and output bridges never receive input: exempt.
        assert not _lint(
            """
            class Source(Operator):
                def play(self):
                    pass
            """
        )


class TestElementMutation:
    def test_positive_annotated_param(self):
        findings = _lint(
            """
            def on_insert(self, element: Insert, port: int) -> None:
                element.vs = 0
            """
        )
        assert _rule_ids(findings) == ["REP103"]

    def test_positive_bare_element_param(self):
        findings = _lint(
            """
            def receive(self, element, port=0):
                element.payload = None
            """
        )
        assert _rule_ids(findings) == ["REP103"]

    def test_positive_augassign(self):
        findings = _lint(
            """
            def on_adjust(self, element: Adjust, port: int) -> None:
                element.ve += 1
            """
        )
        assert _rule_ids(findings) == ["REP103"]

    def test_negative_read_and_rebuild(self):
        assert not _lint(
            """
            def on_insert(self, element: Insert, port: int) -> None:
                fresh = Insert(element.payload, element.vs, element.ve)
                self.emit(fresh)
            """
        )

    def test_negative_other_attribute_targets(self):
        assert not _lint(
            """
            def on_insert(self, element: Insert, port: int) -> None:
                self.count = self.count + 1
            """
        )


class TestSlotGrowth:
    def test_positive_plain_store(self):
        findings = _lint(
            """
            class Packed:
                __slots__ = ("a", "b")

                def __init__(self):
                    self.a = 1
                    self.c = 2
            """
        )
        assert _rule_ids(findings) == ["REP104"]
        assert "'c'" in findings[0].message

    def test_positive_object_setattr(self):
        findings = _lint(
            """
            class Frozen:
                __slots__ = ("vs",)

                def __init__(self):
                    object.__setattr__(self, "vs", 0)
                    object.__setattr__(self, "extra", 1)
            """
        )
        assert _rule_ids(findings) == ["REP104"]

    def test_positive_set_alias(self):
        findings = _lint(
            """
            class Frozen:
                __slots__ = ("vs",)

                def __init__(self):
                    _set(self, "sneaky", 1)
            """
        )
        assert _rule_ids(findings) == ["REP104"]

    def test_negative_inherited_slots_in_module(self):
        assert not _lint(
            """
            class Base:
                __slots__ = ("a",)

            class Child(Base):
                __slots__ = ("b",)

                def __init__(self):
                    self.a = 1
                    self.b = 2
            """
        )

    def test_negative_unslotted_class(self):
        assert not _lint(
            """
            class Open:
                def __init__(self):
                    self.anything = 1
            """
        )

    def test_negative_unknown_base_skipped(self):
        # Base class from another module: layout unknown, no verdict.
        assert not _lint(
            """
            class Child(External):
                __slots__ = ("b",)

                def __init__(self):
                    self.mystery = 1
            """
        )


class TestPrint:
    def test_positive_in_src(self):
        findings = _lint(
            """
            def debug(x):
                print(x)
            """,
            path="src/repro/streams/thing.py",
        )
        assert _rule_ids(findings) == ["REP105"]

    def test_negative_cli_modules_exempt(self):
        for path in ("src/repro/__main__.py", "src/repro/analysis/cli.py"):
            assert not _lint("print('status')\n", path=path)

    def test_negative_outside_src(self):
        assert not _lint("print('hi')\n", path="tests/helper.py")


class TestMutableDefault:
    def test_positive_literal_and_call(self):
        findings = _lint(
            """
            def f(a=[], b=dict()):
                return a, b
            """
        )
        assert _rule_ids(findings) == ["REP106", "REP106"]
        assert all(f.severity == SEVERITY_WARNING for f in findings)

    def test_negative_none_default(self):
        assert not _lint(
            """
            def f(a=None, b=()):
                return a, b
            """
        )


class TestColumnarLoops:
    def test_positive_direct_iteration(self):
        findings = _lint(
            """
            def receive_columns(self, batch, port=0):
                for element in batch:
                    self.receive(element, port)
            """
        )
        assert _rule_ids(findings) == ["REP107"]
        assert findings[0].severity == SEVERITY_ERROR

    def test_positive_to_elements_loop(self):
        findings = _lint(
            """
            def _insert_columns(self, batch, start, stop, stream_id, state):
                for element in batch.to_elements():
                    self._insert(element, stream_id)
            """
        )
        assert _rule_ids(findings) == ["REP107"]

    def test_positive_elements_slice_comprehension(self):
        findings = _lint(
            """
            def process_columns(self, batch, stream_id):
                out = [e for e in batch.elements_slice(0, batch.n)]
                return out
            """
        )
        assert _rule_ids(findings) == ["REP107"]

    def test_positive_annotated_param(self):
        findings = _lint(
            """
            def receive_columns(self, chunk: ColumnBatch, port=0):
                for element in chunk.to_elements():
                    self.receive(element, port)
            """
        )
        assert _rule_ids(findings) == ["REP107"]

    def test_negative_column_walk(self):
        assert not _lint(
            """
            def _insert_columns(self, batch, start, stop, stream_id, state):
                vs = batch.vs
                for i in range(start, stop):
                    self._note(vs[i])
            """
        )

    def test_negative_survivor_materialization(self):
        # Materializing only emitted rows is the sanctioned pattern.
        assert not _lint(
            """
            def _insert_columns(self, batch, start, stop, stream_id, state):
                element_at = batch.element_at
                out = [element_at(i) for i in self._survivors]
                self._emit_batch(out)
            """
        )

    def test_negative_outside_hot_paths(self):
        assert not _lint(
            """
            def receive_columns(self, batch, port=0):
                for element in batch:
                    self.receive(element, port)
            """,
            path=COLD,
        )

    def test_negative_non_batch_function(self):
        assert not _lint(
            """
            def helper(self, batch):
                for element in batch:
                    self.receive(element)
            """
        )


class TestBareNodeAlloc:
    def test_positive_in2t_node_outside_home(self):
        findings = _lint(
            """
            from repro.structures.in2t import In2TNode

            def rebuild(event, key):
                return In2TNode(event, key)
            """,
            path="src/repro/structures/other.py",
        )
        assert _rule_ids(findings) == ["REP108"]

    def test_positive_rbtree_node_in_tests(self):
        findings = _lint(
            """
            from repro.structures.rbtree import _Node

            def make():
                return _Node(1, None, "red")
            """,
            path="tests/test_something.py",
        )
        assert _rule_ids(findings) == ["REP108"]

    def test_positive_attribute_call(self):
        findings = _lint(
            """
            import repro.structures.in3t as in3t

            def make(vs, payload, key):
                return in3t.In3TNode(vs, payload, key)
            """,
            path=COLD,
        )
        assert _rule_ids(findings) == ["REP108"]

    def test_negative_defining_module(self):
        # The module that defines the class IS its pool-aware home.
        assert not _lint(
            """
            class In2TNode:
                def __init__(self, event, key):
                    self.event = event

            def add(event, key):
                return In2TNode(event, key)
            """,
            path="src/repro/structures/in2t.py",
        )

    def test_negative_other_calls(self):
        assert not _lint(
            """
            def f(index, event):
                return index.add(event)
            """
        )

    def test_noqa_suppresses(self):
        assert not _lint(
            """
            from repro.structures.in2t import In2TNode

            def rebuild(event, key):
                return In2TNode(event, key)  # noqa: REP108
            """,
            path=COLD,
        )


class TestRegistryInLoop:
    ENGINE = "src/repro/engine/example.py"

    def test_positive_for_loop_lookup(self):
        findings = _lint(
            """
            def update(registry, edges):
                for edge in edges:
                    registry.gauge("queue_depth", {"edge": edge.name}).set(
                        edge.depth
                    )
            """,
            path=self.ENGINE,
        )
        assert _rule_ids(findings) == ["REP109"]
        assert findings[0].severity == SEVERITY_ERROR

    def test_positive_while_loop_self_registry(self):
        findings = _lint(
            """
            def drain(self):
                while self.pending:
                    item = self.pending.pop()
                    self.registry.counter("drained_total").inc()
            """,
            path="src/repro/lmerge/example.py",
        )
        assert _rule_ids(findings) == ["REP109"]

    def test_positive_comprehension(self):
        findings = _lint(
            """
            def peaks(registry, shards):
                return [
                    registry.gauge("peak", {"shard": s}).value for s in shards
                ]
            """,
            path="src/repro/structures/example.py",
        )
        assert _rule_ids(findings) == ["REP109"]

    def test_positive_nested_loop_reported_once(self):
        findings = _lint(
            """
            def update(registry, grid):
                for row in grid:
                    for cell in row:
                        registry.counter("cells_total").inc()
            """,
            path=self.ENGINE,
        )
        assert _rule_ids(findings) == ["REP109"]

    def test_negative_handle_resolved_before_loop(self):
        assert not _lint(
            """
            def update(registry, edges):
                depth = registry.gauge("queue_depth")
                for edge in edges:
                    depth.set(edge.depth)
            """,
            path=self.ENGINE,
        )

    def test_negative_outside_scope(self):
        # obs/ and resilience/ sample at observer cadence, not per
        # element — the rule patrols engine/lmerge/structures only.
        source = """
            def update(registry, edges):
                for edge in edges:
                    registry.gauge("queue_depth", {"edge": edge.name}).set(0)
            """
        assert not _lint(source, path="src/repro/obs/example.py")
        assert not _lint(source, path="src/repro/resilience/example.py")
        assert not _lint(source, path=COLD)

    def test_negative_non_registry_receiver(self):
        assert not _lint(
            """
            def update(store, edges):
                for edge in edges:
                    store.counter("queue_depth").inc()
            """,
            path=self.ENGINE,
        )

    def test_noqa_suppresses(self):
        assert not _lint(
            """
            def update(registry, edges):
                for edge in edges:
                    registry.counter("edges_total").inc()  # noqa: REP109
            """,
            path=self.ENGINE,
        )


class TestBlockingCalls:
    def test_positive_lock_in_hot_handler(self):
        findings = _lint(
            """
            class Op:
                def on_insert(self, element, port):
                    self._lock.acquire()
            """,
            rules=["REP110"],
        )
        assert _rule_ids(findings) == ["REP110"]

    def test_positive_untimed_get_in_hot_handler(self):
        findings = _lint(
            """
            class Op:
                def receive(self, element, port=0):
                    frame = self.in_ring.get()
            """,
            rules=["REP110"],
        )
        assert _rule_ids(findings) == ["REP110"]

    def test_positive_blocking_inside_reserve_window(self):
        findings = _lint(
            """
            def writer(lock, buf):
                view = memoryview(buf)[0:8]
                lock.acquire()
                pack_into("<Q", buf, 0, 1)
            """,
            rules=["REP110"],
        )
        assert _rule_ids(findings) == ["REP110"]

    def test_negative_blocking_outside_window(self):
        assert not _lint(
            """
            def writer(lock, buf):
                lock.acquire()
                view = memoryview(buf)[0:8]
                view[0] = 1
                pack_into("<Q", buf, 0, 1)
                lock.acquire()
            """,
            rules=["REP110"],
        )

    def test_negative_bounded_acquire_in_handler(self):
        assert not _lint(
            """
            class Op:
                def on_insert(self, element, port):
                    if not self._lock.acquire(timeout=0.1):
                        return
            """,
            rules=["REP110"],
        )

    def test_negative_timed_get_in_handler(self):
        assert not _lint(
            """
            class Op:
                def receive(self, element, port=0):
                    frame = self.in_ring.get(0.5)
            """,
            rules=["REP110"],
        )

    def test_negative_released_view_closes_window(self):
        assert not _lint(
            """
            def writer(lock, buf):
                view = memoryview(buf)[0:8]
                view.release()
                lock.acquire()
            """,
            rules=["REP110"],
        )


class TestPoolEscape:
    def test_positive_append_escape(self):
        findings = _lint(
            """
            class Index:
                def insert(self, key):
                    node = self._pool.acquire()
                    self._spine.append(node)
            """,
            rules=["REP111"],
        )
        assert _rule_ids(findings) == ["REP111"]

    def test_positive_attribute_escape(self):
        findings = _lint(
            """
            class Index:
                def insert(self, key):
                    self.head = self._pool.acquire()
            """,
            rules=["REP111"],
        )
        assert _rule_ids(findings) == ["REP111"]

    def test_positive_escape_through_rebinding(self):
        findings = _lint(
            """
            class Index:
                def insert(self, key):
                    node = self._free_list.acquire()
                    alias = node
                    self._table[key] = alias
            """,
            rules=["REP111"],
        )
        assert _rule_ids(findings) == ["REP111"]

    def test_negative_local_use_and_release(self):
        assert not _lint(
            """
            class Index:
                def insert(self, key):
                    node = self._pool.acquire()
                    node.key = key
                    self._pool.release(node)
            """,
            rules=["REP111"],
        )

    def test_negative_pool_owning_module_exempt(self):
        # The module defining the pooled node class IS the pool
        # discipline: storing nodes into its index is the point.
        assert not _lint(
            """
            class _Node:
                __slots__ = ("key",)

            class Index:
                def insert(self, key):
                    node = self._pool.acquire()
                    self._spine.append(node)
            """,
            rules=["REP111"],
        )

    def test_negative_rebind_kills_taint(self):
        assert not _lint(
            """
            class Index:
                def insert(self, key):
                    node = self._pool.acquire()
                    self._pool.release(node)
                    node = fresh()
                    self._spine.append(node)
            """,
            rules=["REP111"],
        )


class TestSwallowedPunctuation:
    def test_positive_pass_handler(self):
        findings = _lint(
            """
            class Op:
                def on_stable(self, vc, port):
                    try:
                        self.emit(Stable(vc))
                    except Exception:
                        pass
            """,
            rules=["REP112"],
        )
        assert _rule_ids(findings) == ["REP112"]

    def test_negative_reraise(self):
        assert not _lint(
            """
            class Op:
                def on_stable(self, vc, port):
                    try:
                        self.emit(Stable(vc))
                    except Exception:
                        self.errors += 1
                        raise
            """,
            rules=["REP112"],
        )

    def test_negative_handler_emits(self):
        assert not _lint(
            """
            class Op:
                def on_stable(self, vc, port):
                    try:
                        self._emit_stable(vc)
                    except RuntimeError:
                        self.emit(Stable(vc))
            """,
            rules=["REP112"],
        )

    def test_negative_try_without_punctuation(self):
        assert not _lint(
            """
            class Op:
                def on_insert(self, element, port):
                    try:
                        self.count += 1
                    except Exception:
                        pass
            """,
            rules=["REP112"],
        )


class TestUnusedNoqa:
    def test_positive_suppresses_nothing(self):
        findings = _lint(
            """
            x = 1  # noqa: REP105
            """
        )
        assert _rule_ids(findings) == ["REP113"]
        assert findings[0].severity == SEVERITY_WARNING

    def test_negative_suppression_in_use(self):
        assert not _lint(
            """
            def f(a=[]):  # noqa: REP106
                return a
            """
        )

    def test_negative_bare_noqa_not_flagged(self):
        assert not _lint(
            """
            x = 1  # noqa
            """
        )

    def test_negative_foreign_codes_not_flagged(self):
        assert not _lint(
            """
            x = 1  # noqa: E501
            """
        )

    def test_negative_noqa_text_in_string(self):
        # Only real comment tokens count — noqa-shaped text inside
        # strings and docstrings is data, not a suppression.
        assert not _lint(
            '''
            FIXTURE = """
            x = 1  # noqa: REP105
            """
            '''
        )


class TestSuppression:
    def test_bare_noqa(self):
        assert not _lint(
            """
            def f(a=[]):  # noqa
                return a
            """
        )

    def test_targeted_noqa(self):
        assert not _lint(
            """
            def f(a=[]):  # noqa: REP106
                return a
            """
        )

    def test_wrong_code_does_not_suppress(self):
        findings = _lint(
            """
            def f(a=[]):  # noqa: REP101
                return a
            """
        )
        # The REP106 finding survives, and the REP101 suppression —
        # which suppressed nothing — is itself flagged (REP113).
        assert sorted(_rule_ids(findings)) == ["REP106", "REP113"]


class TestHarness:
    def test_syntax_error_reported_not_raised(self):
        findings = _lint("def broken(:\n", path=HOT)
        assert _rule_ids(findings) == ["REP100"]

    def test_rule_filter(self):
        source = """
        import time

        def f(a=[]):
            return time.time()
        """
        assert _rule_ids(_lint(source, rules=["REP106"])) == ["REP106"]

    def test_rule_catalog_complete(self):
        assert set(RULES) == {
            "REP101",
            "REP102",
            "REP103",
            "REP104",
            "REP105",
            "REP106",
            "REP107",
            "REP108",
            "REP109",
            "REP110",
            "REP111",
            "REP112",
            "REP113",
        }

    def test_repo_is_clean(self):
        findings = lint_paths(["src", "tests", "benchmarks", "examples"])
        errors = [
            f for f in findings if f.severity == SEVERITY_ERROR
        ]
        assert errors == [], "\n".join(f.render() for f in errors)
