"""Tests for the specialized algorithms R0, R1, R2 (Algorithms R0-R2)."""

import pytest

from repro.lmerge.base import InputStateError, UnsupportedElementError
from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.tdb import reconstitute
from repro.temporal.time import INFINITY



def attach(merge, n=2):
    for stream_id in range(n):
        merge.attach(stream_id)
    return merge


class TestR0:
    def test_identical_streams_deduplicated(self):
        merge = attach(LMergeR0())
        for stream_id in (0, 1):
            merge.process(Insert("A", 1, 5), stream_id)
            merge.process(Insert("B", 2, 6), stream_id)
        assert merge.stats.inserts_out == 2
        assert merge.output.tdb() == reconstitute([Insert("A", 1, 5), Insert("B", 2, 6)])

    def test_interleaved_lead_changes(self):
        merge = attach(LMergeR0())
        merge.process(Insert("A", 1), 0)
        merge.process(Insert("B", 2), 1)  # stream 1 takes the lead
        merge.process(Insert("B", 2), 0)  # duplicate from stream 0 dropped
        merge.process(Insert("C", 3), 0)  # stream 0 leads again
        assert [e.payload for e in merge.output.data_elements()] == ["A", "B", "C"]

    def test_stable_forwarded_once(self):
        merge = attach(LMergeR0())
        merge.process(Stable(5), 0)
        merge.process(Stable(5), 1)
        merge.process(Stable(3), 1)  # regression ignored
        assert merge.stats.stables_out == 1
        assert merge.max_stable == 5

    def test_adjust_rejected(self):
        merge = attach(LMergeR0())
        merge.process(Insert("A", 1, 5), 0)
        with pytest.raises(UnsupportedElementError):
            merge.process(Adjust("A", 1, 5, 9), 0)

    def test_constant_memory(self):
        merge = attach(LMergeR0(), n=8)
        for i in range(100):
            merge.process(Insert(("p", i), i, i + 10), i % 8)
        assert merge.memory_bytes() == 16

    def test_unattached_stream_rejected(self):
        merge = LMergeR0()
        with pytest.raises(InputStateError):
            merge.process(Insert("A", 1), 0)

    def test_missing_element_semantics(self):
        """Section V-C: a missing element is output as long as another
        stream delivers it before the laggard moves past it."""
        merge = attach(LMergeR0())
        merge.process(Insert("A", 1), 0)
        merge.process(Insert("B", 2), 1)  # stream 1 never saw A
        merge.process(Insert("C", 3), 0)  # stream 0 never saw B
        assert [e.payload for e in merge.output.data_elements()] == ["A", "B", "C"]


class TestR1:
    def test_duplicate_vs_deterministic_order(self):
        """Two streams deliver the same two same-Vs elements in the same
        order; output carries each exactly once."""
        merge = attach(LMergeR1())
        for stream_id in (0, 1):
            merge.process(Insert(("r1", "X"), 5, 9), stream_id)
            merge.process(Insert(("r2", "Y"), 5, 9), stream_id)
        assert merge.stats.inserts_out == 2
        payloads = [e.payload for e in merge.output.data_elements()]
        assert payloads == [("r1", "X"), ("r2", "Y")]

    def test_laggard_duplicates_dropped_by_count(self):
        merge = attach(LMergeR1())
        merge.process(Insert("X", 5), 0)
        merge.process(Insert("Y", 5), 0)
        merge.process(Insert("X", 5), 1)  # counts say: already output
        merge.process(Insert("Y", 5), 1)
        merge.process(Insert("Z", 5), 1)  # third at Vs=5: new
        assert [e.payload for e in merge.output.data_elements()] == ["X", "Y", "Z"]

    def test_new_vs_resets_counters(self):
        merge = attach(LMergeR1())
        merge.process(Insert("X", 5), 0)
        merge.process(Insert("A", 7), 1)  # advances MaxVs; counters reset
        merge.process(Insert("A", 7), 0)  # duplicate at new Vs
        assert merge.stats.inserts_out == 2

    def test_old_vs_dropped(self):
        merge = attach(LMergeR1())
        merge.process(Insert("X", 5), 0)
        merge.process(Insert("OLD", 3), 1)
        assert merge.stats.inserts_out == 1

    def test_adjust_rejected(self):
        merge = attach(LMergeR1())
        with pytest.raises(UnsupportedElementError):
            merge.process(Adjust("A", 1, 5, 9), 0)

    def test_detach_drops_counter(self):
        merge = attach(LMergeR1(), n=3)
        merge.process(Insert("X", 5), 0)
        merge.detach(2)
        assert merge.memory_bytes() < attach(LMergeR1(), n=3).memory_bytes() + 64

    def test_equivalence_on_topk_like_workload(self):
        """Same-Vs batches in identical (rank) order across streams."""
        elements = []
        for window in range(20):
            for rank in range(3):
                elements.append(Insert((rank, f"p{window}"), window * 10, window * 10 + 10))
            elements.append(Stable(window * 10 + 1))
        elements.append(Stable(INFINITY))
        stream = PhysicalStream(elements)
        merge = LMergeR1()
        output = merge.merge([stream, stream, stream])
        assert output.tdb() == stream.tdb()


class TestR2:
    def test_same_vs_different_orders(self):
        """The R2 scenario: same-Vs elements arrive in different orders."""
        merge = attach(LMergeR2())
        merge.process(Insert("X", 5), 0)
        merge.process(Insert("Y", 5), 1)  # different first element: new payload
        merge.process(Insert("Y", 5), 0)
        merge.process(Insert("X", 5), 1)
        assert merge.stats.inserts_out == 2
        assert {e.payload for e in merge.output.data_elements()} == {"X", "Y"}

    def test_hash_cleared_on_new_vs(self):
        merge = attach(LMergeR2())
        merge.process(Insert("X", 5), 0)
        merge.process(Insert("X", 7), 0)  # same payload, new Vs: genuinely new
        assert merge.stats.inserts_out == 2

    def test_memory_tracks_current_vs_payloads(self):
        merge = attach(LMergeR2())
        blob = "z" * 500
        merge.process(Insert((1, blob), 5), 0)
        merge.process(Insert((2, blob), 5), 0)
        with_two = merge.memory_bytes()
        assert with_two > 1000
        merge.process(Insert((3, blob), 9), 0)  # advances Vs, clears hash
        assert merge.memory_bytes() < with_two

    def test_adjust_rejected(self):
        merge = attach(LMergeR2())
        with pytest.raises(UnsupportedElementError):
            merge.process(Adjust("A", 1, 5, 9), 0)

    def test_grouped_aggregate_workload_equivalence(self):
        """Replicas emit per-group results at each window Vs in different
        orders; the merged output carries each exactly once."""
        import random

        base = []
        for window in range(25):
            groups = [(g, window + g) for g in range(4)]
            base.append((window * 10, groups))
        streams = []
        for seed in range(3):
            rng = random.Random(seed)
            elements = []
            for vs, groups in base:
                shuffled = groups[:]
                rng.shuffle(shuffled)
                for payload in shuffled:
                    elements.append(Insert(payload, vs, vs + 10))
                elements.append(Stable(vs + 1))
            elements.append(Stable(INFINITY))
            streams.append(PhysicalStream(elements))
        merge = LMergeR2()
        output = merge.merge(streams, schedule="round_robin")
        assert output.tdb() == streams[0].tdb()


class TestAttachDetachLifecycle:
    def test_double_attach_rejected(self):
        merge = LMergeR0()
        merge.attach(0)
        with pytest.raises(InputStateError):
            merge.attach(0)

    def test_detach_unknown_rejected(self):
        with pytest.raises(InputStateError):
            LMergeR0().detach(0)

    def test_joining_guarantee(self):
        merge = LMergeR0()
        merge.attach(0)
        merge.attach(1, guarantee_from=100)
        assert merge.is_joined(0)
        assert not merge.is_joined(1)
        merge.process(Stable(100), 0)
        assert merge.is_joined(1)

    def test_leading_stream(self):
        merge = attach(LMergeR0(), n=3)
        assert merge.leading_stream() is None  # nobody has punctuated yet
        merge.process(Stable(5), 1)
        merge.process(Stable(9), 2)
        assert merge.leading_stream() == 2
