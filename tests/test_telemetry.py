"""The distributed telemetry pipeline: emitter deltas, aggregator
merges, trace-id plumbing, the crash flight recorder, and a live
process-backend run whose per-shard series advance *during* the merge.
"""

import math

import pytest

from repro.engine.parallel import available_cores
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.shard import shard
from repro.obs.registry import MetricRegistry
from repro.obs.telemetry import (
    FlightRecorder,
    TelemetryAggregator,
    TelemetryEmitter,
    make_trace_id,
    trace_seq,
    trace_shard,
)
from repro.obs.trace import RingTracer
from repro.resilience.store import StateStore

from repro.temporal.elements import Stable

from conftest import divergent_inputs, small_stream


def _data_by_key(elements):
    """Per-(Vs, payload) element sequences, ignoring punctuation — the
    sharded-equivalence notion of element-identical output."""
    ordered = {}
    for element in elements:
        if isinstance(element, Stable):
            continue
        ordered.setdefault((element.vs, element.payload), []).append(element)
    return ordered


class TestTraceIds:
    def test_round_trip(self):
        for shard_id in (0, 1, 7, 200):
            for seq in (0, 1, 99, (1 << 40) - 1):
                tid = make_trace_id(shard_id, seq)
                assert trace_shard(tid) == shard_id
                assert trace_seq(tid) == seq

    def test_zero_is_reserved_for_untraced(self):
        # Batch.trace_id == 0 means "no trace": even shard 0 / seq 0
        # must produce a nonzero id.
        assert make_trace_id(0, 0) != 0

    def test_ids_unique_across_shards(self):
        ids = {make_trace_id(s, q) for s in range(8) for q in range(64)}
        assert len(ids) == 8 * 64


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


class TestTelemetryEmitter:
    def test_counters_ship_increases_only(self):
        registry = MetricRegistry()
        emitter = TelemetryEmitter(registry, shard=1, clock=FakeClock())
        registry.counter("events_total").inc(5)
        delta = emitter.delta()
        assert delta["shard"] == 1
        assert ["events_total", (), 5] in delta["counters"]
        # Unchanged since: the next delta must not repeat the 5.
        assert emitter.delta() is None
        registry.counter("events_total").inc(2)
        assert emitter.delta()["counters"] == [["events_total", (), 2]]

    def test_gauges_ship_current_value(self):
        registry = MetricRegistry()
        emitter = TelemetryEmitter(registry, shard=0, clock=FakeClock())
        registry.gauge("depth").set(4)
        assert emitter.delta()["gauges"] == [["depth", (), 4]]
        registry.gauge("depth").set(2)  # decreases ship too
        assert emitter.delta()["gauges"] == [["depth", (), 2]]

    def test_histogram_delta_and_sample_tail(self):
        registry = MetricRegistry()
        emitter = TelemetryEmitter(registry, shard=0, clock=FakeClock())
        hist = registry.histogram("lat")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        (entry,) = emitter.delta()["hists"]
        name, labels, count_d, sum_d, lo, hi, samples = entry
        assert (name, count_d, sum_d) == ("lat", 3, 6.0)
        assert (lo, hi) == (1.0, 3.0)
        assert samples == [1.0, 2.0, 3.0]
        hist.observe(9.0)
        (entry,) = emitter.delta()["hists"]
        assert entry[2] == 1 and entry[6] == [9.0]

    def test_interval_pacing(self):
        clock = FakeClock()
        registry = MetricRegistry()
        emitter = TelemetryEmitter(
            registry, shard=0, interval=0.25, clock=clock
        )
        registry.counter("c").inc()
        assert emitter.maybe_delta() is None  # interval not yet elapsed
        clock.now = 0.3
        assert emitter.maybe_delta() is not None
        registry.counter("c").inc()
        clock.now = 0.4
        assert emitter.maybe_delta() is None  # re-paced from last emit

    def test_spans_ship_once(self):
        registry = MetricRegistry()
        tracer = RingTracer(capacity=16, clock=FakeClock())
        emitter = TelemetryEmitter(
            registry, shard=0, tracer=tracer, clock=FakeClock()
        )
        tracer.record("span", "merge", tid=7)
        delta = emitter.delta()
        assert [e["op"] for e in delta["spans"]] == ["merge"]
        assert emitter.delta() is None  # already shipped

    def test_empty_delta_is_none(self):
        emitter = TelemetryEmitter(
            MetricRegistry(), shard=0, clock=FakeClock()
        )
        assert emitter.delta() is None


class TestTelemetryAggregator:
    def test_merge_adds_shard_label(self):
        registry = MetricRegistry()
        agg = TelemetryAggregator(registry)
        agg.merge(
            {
                "shard": 2,
                "counters": [["events_total", (), 5]],
                "gauges": [["depth", (("merge", "m"),), 3]],
                "hists": [["lat", (), 2, 5.0, 1.0, 4.0, [1.0, 4.0]]],
            }
        )
        assert registry.counter("events_total", {"shard": 2}).value == 5
        assert (
            registry.gauge("depth", {"merge": "m", "shard": 2}).value == 3
        )
        hist = registry.histogram("lat", {"shard": 2})
        assert (hist.count, hist.total, hist.min, hist.max) == (
            2, 5.0, 1.0, 4.0,
        )
        assert registry.counter(
            "telemetry_frames_total", {"shard": 2}
        ).value == 1

    def test_merge_respects_existing_shard_label(self):
        registry = MetricRegistry()
        agg = TelemetryAggregator(registry)
        agg.merge(
            {"shard": 3, "counters": [["c", (("shard", 9),), 1]]}
        )
        # The worker's own shard label wins (setdefault, not overwrite).
        assert registry.counter("c", {"shard": 9}).value == 1

    def test_counters_accumulate_across_deltas(self):
        registry = MetricRegistry()
        agg = TelemetryAggregator(registry)
        for _ in range(3):
            agg.merge({"shard": 0, "counters": [["c", (), 2]]})
        assert registry.counter("c", {"shard": 0}).value == 6
        assert agg.merged_frames == 3

    def test_spans_forward_as_remote(self):
        registry = MetricRegistry()
        tracer = RingTracer(capacity=8)
        agg = TelemetryAggregator(registry, tracer=tracer)
        agg.merge(
            {
                "shard": 1,
                "spans": [{"t": 0.5, "kind": "span", "op": "batch", "tid": 9}],
            }
        )
        (event,) = tracer.events()
        assert event["op"] == "batch"
        assert event["remote"] is True
        assert event["shard"] == 1
        assert event["tid"] == 9

    def test_submit_output_pairing_feeds_rtt(self):
        registry = MetricRegistry()
        tracer = RingTracer(capacity=8)
        agg = TelemetryAggregator(registry, tracer=tracer)
        tid = agg.next_trace_id(0)
        agg.note_submit(tid)
        agg.note_output(tid)
        hist = registry.histogram("trace_stage_seconds", {"stage": "exchange"})
        assert hist.count == 1
        (event,) = tracer.events()
        assert event["op"] == "exchange" and event["tid"] == tid
        agg.note_output(tid)  # unknown/already-closed ids are ignored
        assert hist.count == 1

    def test_next_trace_id_monotonic_per_shard(self):
        agg = TelemetryAggregator(MetricRegistry())
        a, b = agg.next_trace_id(0), agg.next_trace_id(0)
        c = agg.next_trace_id(1)
        assert trace_seq(b) == trace_seq(a) + 1
        assert trace_shard(c) == 1 and trace_seq(c) == 1

    def test_pending_bounded(self):
        agg = TelemetryAggregator(MetricRegistry(), max_pending=4)
        for seq in range(10):
            agg.note_submit(make_trace_id(0, seq))
        assert len(agg._pending) == 4


class TestFlightRecorder:
    def test_snapshot_oldest_first_and_wraps(self):
        flight = FlightRecorder(capacity=3, clock=FakeClock())
        for seq in range(5):
            flight.record("batch", seq=seq)
        assert [e["seq"] for e in flight.snapshot()] == [2, 3, 4]
        assert flight.recorded == 5

    def test_fields_sanitized_for_json(self):
        flight = FlightRecorder(capacity=4, clock=FakeClock())
        flight.record("batch", stable=-math.inf)
        (event,) = flight.snapshot()
        assert event["stable"] == "-inf"  # json_safe string, not float

    def test_flush_and_read_round_trip(self, tmp_path):
        flight = FlightRecorder(capacity=4, clock=FakeClock())
        store = StateStore(str(tmp_path / "shard-0"), fsync=False)
        assert flight.flush(store) is False  # nothing recorded: no write
        flight.record("batch", seq=1, tid=make_trace_id(0, 1))
        assert flight.dirty
        assert flight.flush(store) is True
        assert not flight.dirty
        assert flight.flush(store) is False  # clean: no rewrite
        store.close()

        reopened = StateStore(str(tmp_path / "shard-0"), fsync=False)
        events = FlightRecorder.read(reopened)
        reopened.close()
        assert [e["seq"] for e in events] == [1]

    def test_read_never_flushed_store(self, tmp_path):
        store = StateStore(str(tmp_path / "empty"), fsync=False)
        assert FlightRecorder.read(store) == []
        store.close()


@pytest.mark.skipif(
    available_cores() < 2,
    reason="live telemetry needs real process workers; host has <2 cores",
)
class TestLiveTelemetry:
    """End-to-end: a process-backend sharded merge streams TELEM frames
    and the driver registry shows per-shard series advancing mid-run."""

    def _run(self, registry, tracer=None, telemetry_interval=0.0):
        reference = small_stream(count=600, seed=11, disorder=0.3, blob=2)
        inputs = divergent_inputs(reference, n=2)
        plan = shard(
            LMergeR3,
            2,
            backend="process",
            registry=registry,
            telemetry_interval=telemetry_interval,
            tracer=tracer,
            queue_capacity=8,
        )
        output = plan.merge(inputs, schedule="round_robin")
        return plan, output, reference

    def test_per_shard_series_advance_and_output_unchanged(self):
        baseline_registry = MetricRegistry()
        _, baseline_out, _ = self._run(baseline_registry)

        registry = MetricRegistry()
        tracer = RingTracer(capacity=16384)
        plan, output, reference = self._run(
            registry, tracer=tracer, telemetry_interval=0.0001
        )

        # Telemetry is observation only: the merged stream carries the
        # same per-key element sequences and reconstitutes to the same
        # TDB.  (Raw order across shards varies with poll timing in any
        # process-backend run, telemetry or not.)
        assert _data_by_key(output) == _data_by_key(baseline_out)
        assert output.tdb() == baseline_out.tdb() == reference.tdb()

        # Worker deltas landed under per-shard labels while running.
        frames = [
            registry.counter(
                "telemetry_frames_total", {"shard": s}
            ).value
            for s in range(2)
        ]
        assert all(f > 0 for f in frames), frames
        for s in range(2):
            assert registry.counter(
                "lmerge_inserts_in_total",
                {"merge": "lmerge", "shard": s},
            ).value > 0
            # Worker-side index gauges are visible at the driver.
            assert registry.gauge(
                "lmerge_index_nodes", {"merge": "lmerge", "shard": s}
            ).value >= 0

        # The exchange RTT histogram closed submit->output loops.
        rtt = registry.histogram(
            "trace_stage_seconds", {"stage": "exchange"}
        )
        assert rtt.count > 0

        # Worker spans stitched into the driver tracer as remote events.
        remote = [e for e in tracer.events() if e.get("remote")]
        assert remote
        shards_seen = {e.get("shard") for e in remote}
        assert shards_seen & {0, 1}

    def test_mid_run_scrape_sees_live_queue_depth(self):
        """Satellite regression: shard_queue_depth/peak used to be
        sampled only in _collect, after the exchange drained — every
        mid-run scrape read zero.  The TELEM-merge hook samples while
        the rings are loaded, so the peak must exceed the final depth
        floor for at least one shard."""
        registry = MetricRegistry()
        plan, _, _ = self._run(registry, telemetry_interval=0.0001)
        assert plan._runtime.on_telemetry is not None
        peaks = [
            registry.gauge(
                "shard_queue_peak", {"merge": plan.name, "shard": s}
            ).value
            for s in range(2)
        ]
        depths = [
            registry.gauge(
                "shard_queue_depth", {"merge": plan.name, "shard": s}
            ).value
            for s in range(2)
        ]
        # The queues existed (gauges registered) and saw traffic on at
        # least one shard while loaded.
        assert len(peaks) == len(depths) == 2
        assert any(p > 0 for p in peaks), (peaks, depths)
