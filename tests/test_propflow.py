"""Static property-flow analysis and LMerge soundness checking."""

import pytest

from repro.analysis.propflow import (
    VERDICT_EXACT,
    VERDICT_OVER_CONSERVATIVE,
    VERDICT_UNSOUND,
    UnsoundPlanError,
    analyze_graph,
    check_plan,
    verify_plan,
)
from repro.engine.operator import Operator
from repro.engine.query import Query
from repro.operators.aggregate import AggregateMode, GroupedCount
from repro.operators.select import Filter
from repro.operators.union import Union
from repro.streams.properties import Restriction, StreamProperties
from tests.conftest import small_stream


def _grouped_replicas(mode=AggregateMode.AGGRESSIVE, disorder=0.3, n=2):
    """Replica queries: grouped aggregation over a disordered source."""
    return [
        Query.from_stream(
            small_stream(count=200, seed=5 + i, disorder=disorder),
            name=f"src{i}",
        ).then(
            GroupedCount(
                window=100,
                key_fn=lambda p: p[0] % 4,
                mode=mode,
                name=f"grouped{i}",
            )
        )
        for i in range(n)
    ]


def _ordered_replicas(n=2):
    return [
        Query.from_stream(
            small_stream(count=150, seed=2, disorder=0.0, min_gap=1),
            name=f"src{i}",
        )
        for i in range(n)
    ]


class TestAnalyzeGraph:
    def test_walks_downstream_to_find_merge_sites(self):
        replicas = _grouped_replicas()
        Query.merge_with(replicas)
        # Hand the analyzer only a source head: it must still discover the
        # LMerge site downstream.
        analysis = analyze_graph(replicas[0].head)
        assert len(analysis.sites) == 1
        assert len(analysis.sites[0].adapters) == 2

    def test_property_map_covers_whole_graph(self):
        replicas = _grouped_replicas()
        analysis = analyze_graph(*replicas)
        # Sources infer their measured properties; aggregates their
        # declared transfer result.
        for query in replicas:
            assert analysis.properties_of(query.tail) == StreamProperties(
                key_vs_payload=True
            )
        assert not analysis.cyclic

    def test_diamond_graph_single_evaluation(self):
        base = Query.from_stream(
            small_stream(count=100, seed=1, disorder=0.0, min_gap=1)
        )
        left = base.then(Filter(lambda p: p[1] % 2 == 0, name="even"))
        right = Query(base.head, base.head).then(
            Filter(lambda p: p[1] % 2 == 1, name="odd")
        )
        union = Union(2, name="u")
        joined = Query.combine([left, right], union)
        analysis = analyze_graph(joined)
        # Both filter branches preserve the source's strong properties;
        # the union forfeits order/determinism/key.
        props = analysis.properties_of(union)
        assert props.insert_only
        assert not props.ordered
        assert not props.key_vs_payload

    def test_cycle_pessimized_to_unknown(self):
        a = Filter(lambda p: True, name="a")
        b = Filter(lambda p: True, name="b")
        a.subscribe(b)
        b.subscribe(a)
        analysis = analyze_graph(a)
        assert set(analysis.cyclic) == {a, b}
        assert analysis.properties_of(a) == StreamProperties.unknown()

    def test_query_property_map_helper(self):
        query = _ordered_replicas(1)[0]
        mapping = query.property_map()
        assert mapping[query.tail].strictly_increasing

    def test_describe_renders_transfers(self):
        query = _grouped_replicas(n=1)[0]
        text = analyze_graph(query).describe()
        assert "grouped0" in text
        assert "key only" in text  # GroupedCount.property_transfer


class TestSoundness:
    def test_matching_selection_is_exact(self):
        replicas = _grouped_replicas()
        Query.merge_with(replicas)
        check = check_plan(*replicas, plan="grouped")
        assert check.ok
        assert [site.verdict for site in check.sites] == [VERDICT_EXACT]
        assert check.sites[0].selected is Restriction.R3
        assert check.sites[0].inferred is Restriction.R3

    def test_unsound_selection_rejected(self):
        # Disordered grouped aggregate (inferred R3) forced into the R1
        # algorithm: the analyzer must error.
        replicas = _grouped_replicas()
        Query.merge_with(replicas, force=Restriction.R1)
        check = check_plan(*replicas, plan="unsound")
        assert not check.ok
        site = check.sites[0]
        assert site.verdict == VERDICT_UNSOUND
        assert site.selected is Restriction.R1
        assert site.inferred is Restriction.R3
        with pytest.raises(UnsoundPlanError, match="R3"):
            verify_plan(*replicas, plan="unsound")

    def test_over_conservative_selection_warned(self):
        # Ordered sources (inferred R0) forced into the general R4
        # algorithm: correct but wasteful — a warning, not an error.
        replicas = _ordered_replicas()
        Query.merge_with(replicas, force=Restriction.R4)
        check = check_plan(*replicas, plan="conservative")
        assert check.ok  # warnings do not fail the plan
        site = check.sites[0]
        assert site.verdict == VERDICT_OVER_CONSERVATIVE
        assert site.selected is Restriction.R4
        assert site.inferred is Restriction.R0
        verify_plan(*replicas, plan="conservative")  # non-strict passes
        with pytest.raises(UnsoundPlanError):
            verify_plan(*replicas, plan="conservative", strict=True)

    def test_sharded_site_checked_through_wrapper(self):
        replicas = _grouped_replicas()
        merge = Query.merge_with(replicas, shards=2, backend="serial")
        try:
            check = check_plan(*replicas, plan="sharded")
            assert check.ok
            assert check.sites[0].selected is Restriction.R3
        finally:
            merge.close()

    def test_site_json_round_trip(self):
        replicas = _ordered_replicas()
        Query.merge_with(replicas)
        payload = check_plan(*replicas, plan="json").to_json()
        assert payload["ok"]
        assert payload["plan"] == "json"
        (site,) = payload["sites"]
        assert site["selected"] == site["inferred"] == "R0"
        assert site["input_properties"]["strictly_increasing"]

    def test_plan_without_sites(self):
        query = _ordered_replicas(1)[0]
        check = check_plan(query, plan="bare")
        assert check.ok
        assert check.sites == []
        assert "no LMerge sites" in check.render()

    def test_undeclared_restriction_raises(self):
        class FakeAdapter(Operator):  # inert test double
            def __init__(self, target):
                super().__init__("fake")
                self.lmerge = target
                self.stream_id = 0

        query = _ordered_replicas(1)[0]
        query.tail.subscribe(FakeAdapter(object()))
        with pytest.raises(TypeError, match="no LMerge restriction"):
            check_plan(query)
