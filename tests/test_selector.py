"""Tests for compile-time algorithm selection (Section IV-G)."""

import pytest

from repro.lmerge.policies import CONSERVATIVE_POLICY
from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.lmerge.selector import algorithm_for, create_lmerge
from repro.streams.properties import Restriction, StreamProperties


class TestAlgorithmFor:
    def test_explicit_restrictions(self):
        assert algorithm_for(Restriction.R0) is LMergeR0
        assert algorithm_for(Restriction.R1) is LMergeR1
        assert algorithm_for(Restriction.R2) is LMergeR2
        assert algorithm_for(Restriction.R3) is LMergeR3
        assert algorithm_for(Restriction.R4) is LMergeR4

    def test_from_properties(self):
        assert algorithm_for(StreamProperties.strongest()) is LMergeR0
        assert algorithm_for(StreamProperties.unknown()) is LMergeR4
        assert algorithm_for(StreamProperties(key_vs_payload=True)) is LMergeR3

    def test_meet_over_multiple_inputs(self):
        """All inputs must satisfy the chosen restriction: one weak input
        forces the general algorithm."""
        strong = StreamProperties.strongest()
        weak = StreamProperties(key_vs_payload=True)
        assert algorithm_for([strong, strong]) is LMergeR0
        assert algorithm_for([strong, weak]) is LMergeR3
        assert algorithm_for([strong, StreamProperties.unknown()]) is LMergeR4

    def test_empty_properties_rejected(self):
        with pytest.raises(ValueError):
            algorithm_for([])


class TestCreateLMerge:
    def test_creates_instances(self):
        merge = create_lmerge(Restriction.R3)
        assert isinstance(merge, LMergeR3)

    def test_policy_honoured_for_r3(self):
        merge = create_lmerge(Restriction.R3, policy=CONSERVATIVE_POLICY)
        assert merge.policy is CONSERVATIVE_POLICY

    def test_policy_rejected_for_simple_algorithms(self):
        with pytest.raises(ValueError):
            create_lmerge(Restriction.R0, policy=CONSERVATIVE_POLICY)

    def test_kwargs_forwarded(self):
        merge = create_lmerge(Restriction.R1, name="custom")
        assert merge.name == "custom"


class TestSectionIVGExamples:
    """The six worked examples of Section IV-G, via the engine's
    property inference."""

    def make_stream(self, disorder):
        from repro.streams.generator import GeneratorConfig, StreamGenerator

        config = GeneratorConfig(
            count=200, seed=1, disorder=disorder, payload_blob_bytes=2
        )
        return StreamGenerator(config).generate()

    def test_windowed_aggregate_over_ordered_gives_r0(self):
        from repro.engine.query import Query
        from repro.operators import AggregateMode, WindowedCount

        query = Query.from_stream(self.make_stream(0.0)).then(
            WindowedCount(window=50)
        )
        assert query.restriction() is Restriction.R0

    def test_topk_gives_r1(self):
        from repro.engine.query import Query
        from repro.operators import TopK

        query = Query.from_stream(self.make_stream(0.0)).then(
            TopK(window=50, k=3, score_fn=lambda p: p[0])
        )
        assert query.restriction() is Restriction.R1

    def test_grouped_aggregation_over_ordered_gives_r2(self):
        from repro.engine.query import Query
        from repro.operators import GroupedCount

        query = Query.from_stream(self.make_stream(0.0)).then(
            GroupedCount(window=50, key_fn=lambda p: p[0] % 4)
        )
        assert query.restriction() is Restriction.R2

    def test_aggressive_aggregation_gives_r3(self):
        from repro.engine.query import Query
        from repro.operators import AggregateMode, GroupedCount

        query = Query.from_stream(self.make_stream(0.3)).then(
            GroupedCount(
                window=50,
                key_fn=lambda p: p[0] % 4,
                mode=AggregateMode.AGGRESSIVE,
            )
        )
        assert query.restriction() is Restriction.R3

    def test_cleanse_enforces_r1(self):
        from repro.engine.query import Query
        from repro.operators import Cleanse

        query = Query.from_stream(self.make_stream(0.5)).then(Cleanse())
        assert query.restriction() in (Restriction.R1, Restriction.R0)

    def test_union_destroys_order(self):
        from repro.engine.query import Query
        from repro.operators import Union

        union = Union(num_inputs=2)
        query = Query.combine(
            [
                Query.from_stream(self.make_stream(0.0)),
                Query.from_stream(self.make_stream(0.0)),
            ],
            union,
        )
        assert query.restriction() is Restriction.R4

    def test_merge_with_picks_selected_algorithm(self):
        from repro.engine.query import Query
        from repro.operators import WindowedCount

        replicas = [
            Query.from_stream(self.make_stream(0.0)).then(WindowedCount(50))
            for _ in range(2)
        ]
        merge = Query.merge_with(replicas)
        assert isinstance(merge, LMergeR0)
