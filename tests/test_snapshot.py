"""Merge state snapshot/restore: the worker-side half of crash recovery.

For every variant R0-R4: interrupt a merge mid-stream, capture
``snapshot_state()``, restore it into a *fresh* instance (optionally via
pickle, as a respawned process would), feed both the identical remainder,
and require element-identical continuations and equal final statistics.
"""

import pickle

import pytest

from repro.lmerge.base import interleave_batches
from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.resilience.snapshot import load_snapshot, save_snapshot
from repro.resilience.store import StateStore
from repro.structures.in2t import OUTPUT

from conftest import divergent_inputs, small_stream

ALL_VARIANTS = [LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR4]


def variant_inputs(variant, seed=5):
    if variant in (LMergeR0, LMergeR1, LMergeR2):
        reference = small_stream(count=120, seed=seed, disorder=0.0, min_gap=1)
        return [reference, reference]
    reference = small_stream(count=120, seed=seed, disorder=0.3)
    return divergent_inputs(reference, n=2)


def feed_plan(inputs, batch_size=16):
    return list(
        interleave_batches(inputs, "round_robin", 0, batch_size)
    )


def run_prefix(variant, feeds, upto):
    out = []
    merge = variant(sink=out.append)
    for stream_id in range(2):
        merge.attach(stream_id)
    for chunk, stream_id in feeds[:upto]:
        merge.process_batch(chunk, stream_id)
    return merge, out


@pytest.mark.parametrize("variant", ALL_VARIANTS)
@pytest.mark.parametrize("through_pickle", [False, True])
def test_snapshot_restore_identical_continuation(variant, through_pickle):
    inputs = variant_inputs(variant)
    feeds = feed_plan(inputs)
    cut = len(feeds) // 2

    # Uninterrupted run.
    reference_out = []
    continuous = variant(sink=reference_out.append)
    for stream_id in range(2):
        continuous.attach(stream_id)
    for chunk, stream_id in feeds:
        continuous.process_batch(chunk, stream_id)

    # Interrupted at the cut: snapshot, restore into a fresh instance
    # (optionally across a pickle boundary, as a respawn would), resume.
    interrupted, early_out = run_prefix(variant, feeds, cut)
    snapshot = interrupted.snapshot_state()
    if through_pickle:
        snapshot = pickle.loads(pickle.dumps(snapshot))
    resumed_out = []
    resumed = variant(sink=resumed_out.append)
    resumed.restore_state(snapshot)
    assert resumed.max_stable == interrupted.max_stable
    assert resumed.input_ids == interrupted.input_ids
    for chunk, stream_id in feeds[cut:]:
        resumed.process_batch(chunk, stream_id)

    assert early_out + resumed_out == reference_out
    assert resumed.stats == continuous.stats
    assert resumed.max_stable == continuous.max_stable


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_restore_rejects_wrong_algorithm(variant):
    merge = variant(sink=lambda e: None)
    snapshot = merge.snapshot_state()
    snapshot["algorithm"] = "not-this-one"
    other = variant(sink=lambda e: None)
    with pytest.raises(ValueError):
        other.restore_state(snapshot)


def test_output_sentinel_identity_survives_pickle():
    """In2T entries test ``key is OUTPUT`` by identity; a snapshot that
    crosses a process boundary must preserve the singleton."""
    clone = pickle.loads(pickle.dumps(OUTPUT))
    assert clone is OUTPUT


@pytest.mark.parametrize("variant", [LMergeR3, LMergeR4])
def test_snapshot_round_trip_through_state_store(tmp_path, variant):
    """The full worker persistence path: snapshot into a StateStore,
    'crash' (reopen without close), restore, and continue identically."""
    inputs = variant_inputs(variant)
    feeds = feed_plan(inputs)
    cut = len(feeds) // 2

    reference_out = []
    continuous = variant(sink=reference_out.append)
    for stream_id in range(2):
        continuous.attach(stream_id)
    for chunk, stream_id in feeds:
        continuous.process_batch(chunk, stream_id)

    interrupted, early_out = run_prefix(variant, feeds, cut)
    store = StateStore(str(tmp_path))
    save_snapshot(store, interrupted, applied_seq=cut, emitted=len(early_out))
    # kill -9: no close; a fresh open must see the synced snapshot.
    reopened = StateStore(str(tmp_path))
    merge_state, applied_seq, emitted = load_snapshot(reopened)
    assert applied_seq == cut
    assert emitted == len(early_out)

    resumed_out = []
    resumed = variant(sink=resumed_out.append)
    resumed.restore_state(merge_state)
    for chunk, stream_id in feeds[cut:]:
        resumed.process_batch(chunk, stream_id)
    assert early_out + resumed_out == reference_out
    reopened.close()
    store.close()


def test_load_snapshot_empty_store(tmp_path):
    with StateStore(str(tmp_path)) as store:
        assert load_snapshot(store) is None
