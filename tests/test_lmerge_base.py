"""Tests for shared LMerge machinery: interleaving, stats, sinks,
feedback fan-out."""

import pytest

from repro.lmerge.base import LMergeBase, MergeStats, interleave
from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r3 import LMergeR3
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import INFINITY


def streams(*lengths):
    return [
        PhysicalStream([Insert((i, k), k + 1, k + 2) for k in range(n)])
        for i, n in enumerate(lengths)
    ]


class TestInterleave:
    def test_round_robin_alternates(self):
        a, b = streams(3, 3)
        order = [sid for _, sid in interleave([a, b], "round_robin")]
        assert order == [0, 1, 0, 1, 0, 1]

    def test_round_robin_uneven(self):
        a, b = streams(1, 3)
        order = [sid for _, sid in interleave([a, b], "round_robin")]
        assert order == [0, 1, 1, 1]

    def test_sequential(self):
        a, b = streams(2, 2)
        order = [sid for _, sid in interleave([a, b], "sequential")]
        assert order == [0, 0, 1, 1]

    def test_random_deterministic_by_seed(self):
        a, b = streams(10, 10)
        first = [sid for _, sid in interleave([a, b], "random", seed=3)]
        second = [sid for _, sid in interleave([a, b], "random", seed=3)]
        assert first == second

    def test_random_covers_everything(self):
        a, b = streams(5, 7)
        elements = list(interleave([a, b], "random", seed=1))
        assert len(elements) == 12

    def test_unknown_schedule_rejected(self):
        a, b = streams(1, 1)
        with pytest.raises(ValueError):
            list(interleave([a, b], "zigzag"))


class TestMergeStats:
    def test_totals(self):
        stats = MergeStats(inserts_in=3, adjusts_in=2, stables_in=1)
        assert stats.elements_in == 6
        assert stats.elements_out == 0

    def test_chattiness_is_adjusts_out(self):
        stats = MergeStats(adjusts_out=7)
        assert stats.chattiness == 7

    def test_merge_accumulates_in_place(self):
        a = MergeStats(inserts_in=3, adjusts_out=2, stables_out=1)
        b = MergeStats(inserts_in=4, adjusts_in=5, stables_out=6)
        result = a.merge(b)
        assert result is a
        assert a.inserts_in == 7
        assert a.adjusts_in == 5
        assert a.adjusts_out == 2
        assert a.stables_out == 7
        # The source record is untouched.
        assert b.inserts_in == 4

    def test_add_is_pure(self):
        a = MergeStats(inserts_in=1, inserts_out=2)
        b = MergeStats(inserts_in=10, stables_in=3)
        total = a + b
        assert (total.inserts_in, total.inserts_out, total.stables_in) == (11, 2, 3)
        assert a.inserts_in == 1 and b.inserts_in == 10

    def test_sum_over_shards(self):
        parts = [MergeStats(inserts_in=i, adjusts_out=1) for i in range(4)]
        total = sum(parts)
        assert total.inserts_in == 6
        assert total.adjusts_out == 4
        assert all(p.adjusts_out == 1 for p in parts)

    def test_merge_stats_helper(self):
        from repro.metrics import merge_stats

        parts = [MergeStats(stables_in=2), MergeStats(stables_in=5)]
        assert merge_stats(parts).stables_in == 7
        assert merge_stats([]).elements_in == 0

    def test_counting_by_processing(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.process(Insert("a", 1, 5), 0)
        merge.process(Adjust("a", 1, 5, 9), 0)
        merge.process(Stable(INFINITY), 0)
        assert merge.stats.inserts_in == 1
        assert merge.stats.adjusts_in == 1
        assert merge.stats.stables_in == 1


class TestSink:
    def test_sink_receives_emitted_elements(self):
        seen = []
        merge = LMergeR0(sink=seen.append)
        merge.attach(0)
        merge.process(Insert("a", 1, 5), 0)
        merge.process(Stable(INFINITY), 0)
        assert seen == [Insert("a", 1, 5), Stable(INFINITY)]

    def test_output_stream_always_recorded(self):
        merge = LMergeR0(sink=lambda e: None)
        merge.attach(0)
        merge.process(Insert("a", 1, 5), 0)
        assert len(merge.output) == 1


class TestFeedbackFanOut:
    def test_only_lagging_inputs_signalled(self):
        merge = LMergeR3()
        for stream_id in range(3):
            merge.attach(stream_id)
        signals = []
        merge.add_feedback_listener(lambda sid, t: signals.append((sid, t)))
        merge.process(Stable(10), 0)
        merge.process(Stable(10), 1)  # catches up; no output stable change
        merge.process(Stable(20), 1)
        lagging_at_20 = {sid for sid, t in signals if t == 20}
        assert lagging_at_20 == {0, 2}

    def test_multiple_listeners(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        first, second = [], []
        merge.add_feedback_listener(lambda sid, t: first.append(sid))
        merge.add_feedback_listener(lambda sid, t: second.append(sid))
        merge.process(Stable(5), 0)
        assert first == second == [1]


class TestMergeDriver:
    def test_merge_attaches_automatically(self):
        a, b = streams(3, 3)
        merge = LMergeR3()
        merge.merge([a, b])
        assert merge.num_inputs == 2

    def test_merge_reuses_existing_attachments(self):
        a, b = streams(3, 3)
        merge = LMergeR3()
        merge.attach(0)
        merge.merge([a, b])  # must not raise "already attached"
        assert merge.num_inputs == 2


class TestAbstractBase:
    def test_handlers_must_be_implemented(self):
        merge = LMergeBase()
        merge.attach(0)
        with pytest.raises(NotImplementedError):
            merge.process(Insert("a", 1), 0)
        with pytest.raises(NotImplementedError):
            merge.process(Stable(1), 0)
        with pytest.raises(NotImplementedError):
            merge.memory_bytes()

    def test_non_element_rejected(self):
        merge = LMergeR0()
        merge.attach(0)
        with pytest.raises(TypeError):
            merge.process("junk", 0)
