"""Tests for the ring-buffer tracer (repro.obs.trace) and the engine's
tracing hook points."""

import io
import json

import pytest

from repro.engine.operator import CollectorSink, Operator
from repro.engine.runtime import Runtime
from repro.lmerge.r3 import LMergeR3
from repro.obs.trace import NULL_TRACER, NullTracer, RingTracer
from repro.temporal.elements import Insert, Stable

from conftest import divergent_inputs, small_stream


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.record("anything", "op", n=3)  # no-op, no error
        assert NULL_TRACER.events() == []

    def test_span_is_reusable_noop(self):
        with NULL_TRACER.span("region") as s1:
            with NULL_TRACER.span("region") as s2:
                assert s1 is s2  # one shared instance, zero allocation

    def test_singleton_identity(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestRingTracer:
    def test_records_in_order(self):
        tracer = RingTracer(capacity=8, clock=FakeClock())
        tracer.record("a", "op1", n=1)
        tracer.record("b", "op2", n=2)
        events = tracer.events()
        assert [e["kind"] for e in events] == ["a", "b"]
        assert events[0]["op"] == "op1"
        assert events[1]["n"] == 2
        assert events[0]["t"] < events[1]["t"]

    def test_wraparound_keeps_newest(self):
        tracer = RingTracer(capacity=4)
        for i in range(10):
            tracer.record("e", n=i)
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        assert len(tracer) == 4
        assert [e["n"] for e in tracer.events()] == [6, 7, 8, 9]

    def test_exact_capacity_boundary(self):
        tracer = RingTracer(capacity=3)
        for i in range(3):
            tracer.record("e", n=i)
        assert tracer.dropped == 0
        assert [e["n"] for e in tracer.events()] == [0, 1, 2]
        tracer.record("e", n=3)
        assert tracer.dropped == 1
        assert [e["n"] for e in tracer.events()] == [1, 2, 3]

    def test_span_records_duration(self):
        clock = FakeClock()
        tracer = RingTracer(capacity=8, clock=clock)
        with tracer.span("work", "op", tag="x"):
            pass
        (event,) = tracer.events()
        assert event["kind"] == "work"
        assert event["tag"] == "x"
        assert event["dur"] > 0

    def test_clear(self):
        tracer = RingTracer(capacity=4)
        tracer.record("e")
        tracer.clear()
        assert len(tracer) == 0 and tracer.recorded == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_export_jsonl_is_valid_json(self):
        tracer = RingTracer(capacity=8)
        tracer.record("stable", "m", t_stable=float("-inf"))
        tracer.record("data", "m", n=3)
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 2
        lines = buffer.getvalue().splitlines()
        decoded = [json.loads(line) for line in lines]  # must not raise
        assert decoded[0]["t_stable"] == "-inf"
        assert decoded[1]["n"] == 3


class TestOperatorTracing:
    def test_default_operator_has_null_tracer(self):
        assert Operator("op").tracer is NULL_TRACER

    def test_receive_records_events(self):
        tracer = RingTracer(capacity=64)
        sink = CollectorSink()
        sink.tracer = tracer  # base receive() is overridden; use a plain op

        class Probe(Operator):
            def on_insert(self, element, port):
                self.emit(element)

            def on_stable(self, vc, port):
                self.emit(Stable(vc))

        probe = Probe("probe").set_tracer(tracer)
        probe.subscribe(sink)
        probe.receive(Insert("a", 1, 5))
        probe.receive(Stable(2))
        kinds = [(e["kind"], e["op"], e["cls"]) for e in tracer.events()]
        assert ("receive", "probe", "Insert") in kinds
        assert ("receive", "probe", "Stable") in kinds

    def test_receive_batch_records_summary(self):
        tracer = RingTracer(capacity=64)

        class Probe(Operator):  # noqa: REP102 — trace-capture stub
            def on_insert(self, element, port):
                self.emit(element)

        probe = Probe("probe").set_tracer(tracer)
        probe.receive_batch([Insert("a", 1, 5), Insert("b", 2, 5)])
        batch_events = [
            e for e in tracer.events() if e["kind"] == "receive_batch"
        ]
        assert len(batch_events) == 1
        assert batch_events[0]["n"] == 2
        assert batch_events[0]["out"] == 2


class TestLMergeTracing:
    def test_process_batch_span(self):
        tracer = RingTracer(capacity=256)
        merge = LMergeR3().set_tracer(tracer)
        reference = small_stream(count=120, blob=2)
        inputs = divergent_inputs(reference, n=2)
        merge.merge_batched(inputs, schedule="sequential", batch_size=32)
        batches = [
            e for e in tracer.events() if e["kind"] == "process_batch"
        ]
        assert batches, "process_batch events missing"
        assert all(e["op"] == "lmerge" for e in batches)
        assert sum(e["n"] for e in batches) == sum(len(s) for s in inputs)
        # Output accounting in the spans matches the merge's own stats.
        assert sum(e["out"] for e in batches) == merge.stats.elements_out
        stables = [e for e in tracer.events() if e["kind"] == "stable_out"]
        assert len(stables) == merge.stats.stables_out

    def test_tracing_does_not_change_output(self):
        reference = small_stream(count=150, blob=2)
        inputs = divergent_inputs(reference, n=2)
        plain = LMergeR3()
        out_plain = plain.merge_batched(inputs, schedule="sequential")
        traced = LMergeR3().set_tracer(RingTracer(capacity=16))
        out_traced = traced.merge_batched(inputs, schedule="sequential")
        assert list(out_plain) == list(out_traced)
        assert plain.stats == traced.stats


class TestRuntimeTracing:
    def test_pump_and_drain_events(self):
        tracer = RingTracer(capacity=256)
        runtime = Runtime(batch=4, tracer=tracer)
        sink = CollectorSink()
        edge = runtime.edge_to(sink)
        for i in range(10):
            edge.receive(Insert(f"p{i}", i, i + 1))
        runtime.run()
        kinds = [e["kind"] for e in tracer.events()]
        assert "pump" in kinds and "drain" in kinds
        drained = sum(
            e["size"] for e in tracer.events() if e["kind"] == "drain"
        )
        assert drained == 10

    def test_registry_queue_gauges(self):
        from repro.obs.registry import MetricRegistry

        registry = MetricRegistry()
        runtime = Runtime(batch=4, registry=registry)
        sink = CollectorSink()
        edge = runtime.edge_to(sink)
        for i in range(6):
            edge.receive(Insert(f"p{i}", i, i + 1))
        runtime.run()
        moved = registry.counter("runtime_elements_moved_total")
        assert moved.value == 6
        peak = registry.gauge("runtime_queue_peak", {"edge": edge.name})
        assert peak.value == edge.peak_depth == 6
        depth = registry.gauge("runtime_queue_depth", {"edge": edge.name})
        assert depth.value == 0  # drained
