"""The stable-lag policy (Section V-A's closing observation)."""

import pytest

from repro.lmerge.policies import OutputPolicy
from repro.lmerge.r3 import LMergeR3
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import INFINITY

from conftest import divergent_inputs, merge_with_oracle, small_stream


class TestStableLag:
    def test_output_stable_trails_inputs(self):
        merge = LMergeR3(policy=OutputPolicy(stable_lag=10))
        merge.attach(0)
        merge.process(Insert("a", 1, 5), 0)
        merge.process(Stable(50), 0)
        assert merge.max_stable == 40

    def test_infinity_not_lagged(self):
        merge = LMergeR3(policy=OutputPolicy(stable_lag=10))
        merge.attach(0)
        merge.process(Stable(INFINITY), 0)
        assert merge.max_stable == INFINITY

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            OutputPolicy(stable_lag=-1)

    def test_lag_avoids_adjusts(self):
        """An input revision landing between t-lag and t costs the lagged
        merge nothing, while the prompt merge must correct itself."""
        def drive(policy):
            merge = LMergeR3(policy=policy)
            merge.attach(0)
            merge.attach(1)
            merge.process(Insert("a", 1, 8), 0)
            merge.process(Stable(10), 0)  # freezes a at Ve=8 if prompt
            # Input 1 (still below its own stable) holds a different
            # transient end, then converges.
            merge.process(Insert("a", 1, 9), 1)
            merge.process(Adjust("a", 1, 9, 8), 1)
            merge.process(Stable(10), 1)
            merge.process(Stable(INFINITY), 0)
            merge.process(Stable(INFINITY), 1)
            return merge

        prompt = drive(OutputPolicy())
        lagged = drive(OutputPolicy(stable_lag=5))
        assert prompt.output.tdb() == lagged.output.tdb()
        assert lagged.stats.adjusts_out <= prompt.stats.adjusts_out

    def test_equivalence_end_to_end(self):
        reference = small_stream(count=300, seed=160, stable_freq=0.08)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=0.4)
        merge = LMergeR3(policy=OutputPolicy(stable_lag=200))
        output = merge.merge(inputs, schedule="random", seed=8)
        assert output.tdb() == reference.tdb()

    def test_oracle_compliance(self):
        reference = small_stream(count=150, seed=161, stable_freq=0.08)
        inputs = divergent_inputs(reference, n=2, speculate_fraction=0.3)
        merge_with_oracle(
            LMergeR3(policy=OutputPolicy(stable_lag=100)),
            inputs,
            check_every=6,
        )

    def test_lag_retains_more_state(self):
        reference = small_stream(
            count=400, seed=162, stable_freq=0.05, event_duration=50
        )
        inputs = divergent_inputs(reference, n=2)

        def peak(policy):
            merge = LMergeR3(policy=policy)
            from repro.lmerge.base import interleave

            for stream_id in range(2):
                merge.attach(stream_id)
            peak_keys = 0
            for element, stream_id in interleave(list(inputs), "round_robin", 0):
                merge.process(element, stream_id)
                peak_keys = max(peak_keys, merge.live_keys)
            return peak_keys

        assert peak(OutputPolicy(stable_lag=500)) > peak(OutputPolicy())
