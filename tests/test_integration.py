"""Cross-module integration tests: policies under the oracle, composed
plans, counters, and mixed delay models."""

import pytest

from repro.engine.query import Query
from repro.engine.simulation import (
    BurstyDelay,
    CongestionWindows,
    SimulatedChannel,
    Simulation,
    timed_schedule,
)
from repro.lmerge.policies import (
    CONSERVATIVE_POLICY,
    EAGER_POLICY,
    InsertPropagation,
    OutputPolicy,
)
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.operators.aggregate import AggregateMode, GroupedCount
from repro.operators.select import Filter
from repro.operators.union import Union
from repro.temporal.elements import Insert, Stable

from conftest import divergent_inputs, merge_with_oracle, small_stream


class TestPoliciesUnderOracle:
    """Every policy must keep the C1-C3 invariants at every step."""

    @pytest.mark.parametrize(
        "policy",
        [
            EAGER_POLICY,
            CONSERVATIVE_POLICY,
            OutputPolicy(insert=InsertPropagation.LEADING),
            OutputPolicy(insert=InsertPropagation.QUORUM, quorum_fraction=0.6),
        ],
        ids=["eager", "half-frozen", "leading", "quorum"],
    )
    def test_policy_oracle(self, policy):
        reference = small_stream(count=150, seed=150, stable_freq=0.08)
        inputs = divergent_inputs(reference, n=3, speculate_fraction=0.4)
        merge_with_oracle(LMergeR3(policy=policy), inputs, check_every=5)


class TestDetachUnderOracle:
    def test_r3_detach_midway_stays_compatible(self):
        from repro.lmerge.base import interleave
        from repro.temporal.tdb import TDB
        from repro.theory.compatibility import check_r3_compatibility

        reference = small_stream(count=150, seed=151)
        inputs = divergent_inputs(reference, n=3)
        merge = LMergeR3()
        for stream_id in range(3):
            merge.attach(stream_id)
        input_tdbs = [TDB() for _ in inputs]
        output_tdb = TDB()
        cursor = 0
        cut = len(inputs[2]) // 3
        step = 0
        detached = False
        for element, stream_id in interleave(list(inputs), "round_robin", 0):
            if detached and stream_id == 2:
                continue  # the failed replica's residual output is lost
            merge.process(element, stream_id)
            input_tdbs[stream_id].apply(element)
            while cursor < len(merge.output):
                output_tdb.apply(merge.output[cursor])
                cursor += 1
            step += 1
            if not detached and input_tdbs[2].stable_point >= 0 and step > cut:
                merge.detach(2)
                detached = True
                # From here the oracle judges against the survivors plus
                # the failed input's final (frozen-in-time) prefix.
            if step % 7 == 0:
                violations = check_r3_compatibility(input_tdbs, output_tdb)
                assert not violations, "; ".join(str(v) for v in violations)
        assert detached
        assert merge.output.tdb() == reference.tdb()


class TestCounters:
    def test_dropped_frozen_counter(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        merge.process(Insert("a", 1, 3), 0)
        merge.process(Stable(10), 0)
        merge.process(Insert("a", 1, 3), 1)  # laggard echo
        assert merge.dropped_frozen == 1

    def test_stable_scan_counter(self):
        merge = LMergeR3()
        merge.attach(0)
        for index in range(10):
            merge.process(Insert(("p", index), index, index + 100), 0)
        merge.process(Stable(5), 0)
        assert merge.stable_scan_nodes == 5  # nodes with Vs < 5

    def test_r4_counters_exist(self):
        merge = LMergeR4()
        merge.attach(0)
        merge.process(Insert("a", 1, 3), 0)
        merge.process(Stable(10), 0)
        merge.process(Insert("b", 1, 3), 0)
        assert merge.dropped_frozen == 1
        assert merge.stable_scan_nodes >= 1


class TestComposedPlans:
    def test_union_then_aggregate_replicas(self):
        """Two sources unioned, grouped-aggregated, replicated, merged —
        a full Section I pipeline."""
        left = small_stream(count=200, seed=152, disorder=0.0)
        right = small_stream(count=200, seed=153, disorder=0.0)

        def build_replica():
            union = Union(num_inputs=2)
            query = Query.combine(
                [Query.from_stream(left), Query.from_stream(right)], union
            )
            return query.then(
                GroupedCount(
                    window=100,
                    key_fn=lambda p: p[0] % 4,
                    mode=AggregateMode.AGGRESSIVE,
                )
            )

        replicas = [build_replica() for _ in range(2)]
        # The union destroys every input guarantee, but the grouped
        # aggregate re-establishes the key property on its *output*
        # (one live (window, group, count) at a time) -> LMR3.
        merge = Query.merge_with(replicas)
        assert isinstance(merge, LMergeR3)
        from repro.engine.query import play_together

        play_together(replicas, chunk=32)
        # Both replicas compute the same logical result; so must the merge.
        single = build_replica().run()
        assert merge.output.tdb() == single.tdb()

    def test_filter_pushdown_equivalence(self):
        """Filter-before-aggregate == aggregate-over-filtered replicas."""
        stream = small_stream(count=300, seed=154, disorder=0.3)
        plan_a = (
            Query.from_stream(stream)
            .then(Filter(lambda p: p[0] % 2 == 0))
            .then(GroupedCount(window=100, key_fn=lambda p: p[0] % 4))
            .run()
        )
        from repro.streams.divergence import diverge

        plan_b = (
            Query.from_stream(diverge(stream, seed=5))
            .then(Filter(lambda p: p[0] % 2 == 0))
            .then(GroupedCount(window=100, key_fn=lambda p: p[0] % 4))
            .run()
        )
        merge = LMergeR3()
        output = merge.merge([plan_a, plan_b], schedule="random", seed=9)
        assert output.tdb() == plan_a.tdb()


class TestMixedDelayModels:
    def test_latency_and_service_compose(self):
        """A link can both stall (latency) and throttle (service)."""
        sim = Simulation()
        arrivals = []
        channel = SimulatedChannel(
            sim,
            lambda element: arrivals.append(sim.now),
            delay_model=BurstyDelay(probability=1.0, mean=1.0, std=0.0),
            service_model=CongestionWindows(
                windows=[(0.0, 100.0)], mean=0.5, std=0.0
            ),
            seed=1,
        )
        elements = [Insert(i, i + 1) for i in range(4)]
        channel.feed(timed_schedule(elements, rate=10.0))
        sim.run()
        # Every element: +1s stall; the link also needs 0.5s per element.
        assert arrivals[0] == pytest.approx(1.5)
        assert arrivals[1] == pytest.approx(2.0)  # queued behind service
        assert arrivals == sorted(arrivals)
