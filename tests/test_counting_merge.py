"""The trivial counting merge (Section I): correct only for identical
sequences, and demonstrably broken under failures — the paper's
motivation for LMerge."""

import pytest

from repro.lmerge.counting import CountingMerge
from repro.lmerge.r3 import LMergeR3
from repro.temporal.elements import Insert

from conftest import small_stream


def identical_stream():
    return small_stream(count=200, seed=81, disorder=0.0)


class TestHappyPath:
    def test_identical_streams_merge_exactly(self):
        stream = identical_stream()
        merge = CountingMerge()
        output = merge.merge([stream, stream, stream], schedule="round_robin")
        assert list(output) == list(stream)

    def test_random_interleave_still_exact(self):
        stream = identical_stream()
        merge = CountingMerge()
        output = merge.merge([stream, stream], schedule="random", seed=4)
        assert list(output) == list(stream)

    def test_lead_changes_between_inputs(self):
        merge = CountingMerge()
        merge.attach(0)
        merge.attach(1)
        merge.process(Insert("a", 1), 0)  # 0 leads
        merge.process(Insert("a", 1), 1)
        merge.process(Insert("b", 2), 1)  # 1 takes the lead
        merge.process(Insert("b", 2), 0)
        assert [e.payload for e in merge.output.data_elements()] == ["a", "b"]

    def test_constant_memory(self):
        merge = CountingMerge()
        merge.attach(0)
        for index in range(100):
            merge.process(Insert(("p", index), index, index + 1), 0)
        assert merge.memory_bytes() <= 16 + 8


class TestFailureModes:
    """Section I-B.4: 'the trivial counting merge outlined earlier for
    simple streams does not work correctly when failures exist.'"""

    def test_gap_causes_missing_elements(self):
        """A re-attaching input that skipped elements keeps counting from
        its old position: the merge silently drops stream content."""
        stream = identical_stream()
        merge = CountingMerge()
        merge.attach(0)
        merge.attach(1)
        half = len(stream) // 2
        # Input 0 delivers the first half, then dies.
        for element in stream[:half]:
            merge.process(element, 0)
        merge.detach(0)
        # Input 1 restarts *from the gap's end* (it lost its backlog):
        # its counter starts at zero, so the merge swallows the second
        # half's first `half` elements as "already seen".
        skip = 20
        for element in stream[half + skip :]:
            merge.process(element, 1)
        counted_output = merge.output
        # The elements in the gap are gone AND further elements were
        # wrongly dropped: the output is NOT the logical stream.
        assert counted_output.tdb() != stream.tdb()
        assert counted_output.count_inserts() < stream.count_inserts() - skip

    def test_rewind_causes_duplicates(self):
        """An input that silently restarts and re-delivers history pushes
        its counter past the maximum: the merge emits every element a
        second time."""
        stream = identical_stream()
        merge = CountingMerge()
        merge.attach(0)
        merge.attach(1)
        for element in stream:
            merge.process(element, 0)
        # Input 0's process crashes and reprocesses its input from the
        # start — the merge has no way to know (same connection id).
        for element in stream:
            merge.process(element, 0)
        assert merge.output.count_inserts() == 2 * stream.count_inserts()
        # Worse than duplication: the replay lands *behind* the already-
        # emitted stable(inf), so the output is not even a valid stream.
        from repro.temporal.tdb import StreamViolationError

        with pytest.raises(StreamViolationError):
            merge.output.tdb()

    def test_lmerge_handles_the_same_schedules(self):
        """The contrast: LMR3+ under the exact same failure schedules
        stays correct."""
        stream = identical_stream()
        # Gap schedule:
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        half = len(stream) // 2
        for element in stream[:half]:
            merge.process(element, 0)
        # Input 1 catches up fully before 0 dies (it was merely slower).
        for element in stream:
            merge.process(element, 1)
        merge.detach(0)
        assert merge.output.tdb() == stream.tdb()
        # Rewind schedule:
        merge = LMergeR3()
        merge.attach(0)
        for element in stream:
            merge.process(element, 0)
        merge.detach(0)
        merge.attach(0, guarantee_from=merge.max_stable)
        for element in stream:
            merge.process(element, 0)
        assert merge.output.tdb() == stream.tdb()


class TestDisorderBreaksCounting:
    def test_divergent_orders_mismerge(self):
        """Counting also fails on mere reordering (no failures at all)."""
        from repro.streams.divergence import diverge

        reference = small_stream(count=200, seed=82, disorder=0.3)
        inputs = [diverge(reference, seed=i) for i in range(2)]
        merge = CountingMerge()
        # A lead-alternating arrival order zips positions from two
        # different physical orders: the result omits some elements and
        # duplicates others.
        output = merge.merge(inputs, schedule="random", seed=1)
        assert output.tdb(strict=False) != reference.tdb()
