"""Ring-protocol verifier: the repo verifies clean, broken idioms don't."""

import textwrap

from repro.analysis.protocol import (
    DEFAULT_PROTOCOL_PATHS,
    ProtocolReport,
    verify_paths,
    verify_source,
)
from repro.engine.shm import FRAME_PROTOCOL, FrameSpec, frame_name


def _verify(source, path="src/repro/engine/example.py"):
    return ProtocolReport(verify_source(textwrap.dedent(source), path=path))


def _violations(report):
    return [v for site in report.sites for v in site.violations]


class TestFrameProtocolSpec:
    def test_every_kind_has_a_spec(self):
        assert sorted(FRAME_PROTOCOL) == list(range(1, 9))
        for kind, spec in FRAME_PROTOCOL.items():
            assert isinstance(spec, FrameSpec)
            assert spec.kind == kind
            assert spec.producer in ("driver", "worker")
            assert spec.discipline in ("blocking", "bounded", "best_effort")

    def test_terminal_kinds(self):
        terminals = {s.name for s in FRAME_PROTOCOL.values() if s.terminal}
        assert terminals == {"DONE", "ERR"}

    def test_telemetry_is_best_effort(self):
        telem = next(
            s for s in FRAME_PROTOCOL.values() if s.name == "TELEM"
        )
        assert telem.discipline == "best_effort"

    def test_frame_name_fallback(self):
        assert frame_name(1) == "CTRL"
        assert frame_name(99) == "?99"


class TestRepoSites:
    def test_every_default_module_site_is_clean(self):
        report = verify_paths(DEFAULT_PROTOCOL_PATHS)
        assert report.ok, report.render()
        # The concurrent modules carry a substantial ring surface; a
        # collapse here means the site scanner went blind, not that the
        # code got simpler.
        assert len(report.sites) >= 20

    def test_report_counts_match_sites(self):
        report = verify_paths(DEFAULT_PROTOCOL_PATHS)
        payload = report.to_json()
        assert payload["summary"]["sites"] == len(report.sites)
        assert payload["summary"]["violations"] == 0


class TestBrokenFixtures:
    def test_worker_producing_ctrl(self):
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                out_ring.put_pickle(CTRL, ("go",), timeout=1.0)
            """
        )
        assert not report.ok
        assert any("produced by the driver" in v for v in _violations(report))

    def test_blocking_telemetry_put(self):
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                out_ring.put(TELEM, payload)
            """
        )
        assert not report.ok
        assert any("timeout=0" in v for v in _violations(report))

    def test_telemetry_with_nonzero_timeout(self):
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                out_ring.put(TELEM, payload, 0.5)
            """
        )
        assert not report.ok

    def test_heartbeat_without_timeout(self):
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                out_ring.put_pickle(HB, ("beat", 0))
            """
        )
        assert not report.ok
        assert any("bounded" in v.lower() for v in _violations(report))

    def test_put_after_terminal_done(self):
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                out_ring.put_pickle(DONE, summary)
                out_ring.put(OUT, data)
            """
        )
        assert not report.ok
        assert any("terminal" in v.lower() for v in _violations(report))

    def test_undeclared_frame_kind(self):
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                out_ring.put(SNAPSHOT, data, timeout=1.0)
            """
        )
        assert not report.ok
        assert any("FRAME_PROTOCOL" in v for v in _violations(report))

    def test_driver_untimed_get(self):
        report = _verify(
            """
            class MergeRuntime:
                def drain(self):
                    frame = self._out_ring.get()
            """
        )
        assert not report.ok

    def test_unknown_role_is_a_violation(self):
        report = _verify(
            """
            def helper(ring):
                ring.put_pickle(HB, ("beat", 0), timeout=1.0)
            """
        )
        assert not report.ok

    def test_syntax_error_becomes_site(self, tmp_path):
        # verify_paths must not die on an unparseable file — the broken
        # file itself becomes a violating site.
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n", encoding="utf-8")
        report = verify_paths([str(broken)])
        assert not report.ok
        assert report.sites[0].op == "parse"


class TestCleanFixtures:
    def test_conforming_worker_loop(self):
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                while True:
                    frame = in_ring.get(timeout=1.0)
                    out_ring.put(OUT, result, None)
                    out_ring.put_pickle(HB, ("beat", 0), timeout=5.0)
                    out_ring.put(TELEM, stats, timeout=0)
                out_ring.put_pickle(DONE, summary)
            """
        )
        assert report.ok, report.render()

    def test_error_after_done_is_legal(self):
        # Terminal-after-terminal: a worker that failed during teardown
        # may still report ERR after DONE.
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                out_ring.put_pickle(DONE, summary)
                out_ring.put_pickle(ERR, failure, timeout=1.0)
            """
        )
        assert report.ok, report.render()

    def test_driver_side_runtime(self):
        report = _verify(
            """
            class ShardRuntime:
                def dispatch(self):
                    self._in_ring.put_frame(BATCH, size, fill, timeout=2.0)
                    self._in_ring.put_pickle(CTRL, ("stop",), timeout=2.0)
                    frame = self._out_ring.get(timeout=1.0)
            """
        )
        assert report.ok, report.render()

    def test_non_ring_put_get_ignored(self):
        report = _verify(
            """
            def shard_loop(in_ring, out_ring):
                cache = {}
                cache.get("key")
                store.put("key", "value")
            """
        )
        assert report.ok
        assert len(report.sites) == 0
