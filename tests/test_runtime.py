"""Queued runtime: scheduling, backpressure, queue statistics."""

import pytest

from repro.engine.operator import CollectorSink
from repro.engine.runtime import QueuedEdge, QueueFullError, Runtime
from repro.operators.aggregate import WindowedCount
from repro.operators.select import Filter
from repro.operators.source import StreamSource
from repro.temporal.elements import Insert

from conftest import small_stream


class TestQueuedEdge:
    def test_buffers_until_drained(self):
        sink = CollectorSink()
        edge = QueuedEdge(sink)
        edge.receive(Insert("a", 1), 0)
        edge.receive(Insert("b", 2), 0)
        assert edge.depth == 2
        assert len(sink.stream) == 0
        assert edge.drain(10) == 2
        assert len(sink.stream) == 2
        assert edge.depth == 0

    def test_drain_respects_budget(self):
        sink = CollectorSink()
        edge = QueuedEdge(sink)
        for index in range(5):
            edge.receive(Insert(index, index + 1), 0)
        assert edge.drain(2) == 2
        assert edge.depth == 3

    def test_capacity_enforced(self):
        edge = QueuedEdge(CollectorSink(), capacity=2)
        edge.receive(Insert("a", 1), 0)
        edge.receive(Insert("b", 2), 0)
        with pytest.raises(QueueFullError):
            edge.receive(Insert("c", 3), 0)

    def test_peak_depth_tracked(self):
        edge = QueuedEdge(CollectorSink())
        for index in range(7):
            edge.receive(Insert(index, index + 1), 0)
        edge.drain(100)
        assert edge.peak_depth == 7

    def test_fifo_order(self):
        sink = CollectorSink()
        edge = QueuedEdge(sink)
        for index in range(4):
            edge.receive(Insert(index, index + 1), 0)
        edge.drain(100)
        assert [e.payload for e in sink.stream] == [0, 1, 2, 3]

    def test_batch_overflow_admits_fitting_prefix(self):
        """Regression: a batch on a near-full bounded edge must enqueue
        the fitting prefix and backpressure on the remainder — exactly the
        state a per-element receive loop would leave behind."""
        edge = QueuedEdge(CollectorSink(), capacity=4)
        edge.receive(Insert("a", 1), 0)
        batch = [Insert(i, i + 1) for i in range(5)]
        with pytest.raises(QueueFullError) as excinfo:
            edge.receive_batch(batch, 0)
        assert excinfo.value.accepted == 3
        assert excinfo.value.rejected == 2
        assert edge.depth == 4  # prefix admitted, not over-admitted
        assert edge.enqueued == 4

    def test_batch_overflow_matches_per_element_counters(self):
        batch = [Insert(i, i + 1) for i in range(5)]

        batched = QueuedEdge(CollectorSink(), capacity=3)
        with pytest.raises(QueueFullError):
            batched.receive_batch(batch, 0)

        one_by_one = QueuedEdge(CollectorSink(), capacity=3)
        with pytest.raises(QueueFullError):
            for element in batch:
                one_by_one.receive(element, 0)

        assert batched.depth == one_by_one.depth == 3
        assert batched.enqueued == one_by_one.enqueued
        assert batched.elements_in == one_by_one.elements_in
        assert batched.peak_depth == one_by_one.peak_depth

    def test_batch_overflow_on_full_edge_admits_nothing(self):
        edge = QueuedEdge(CollectorSink(), capacity=2)
        edge.receive_batch([Insert("a", 1), Insert("b", 2)], 0)
        with pytest.raises(QueueFullError) as excinfo:
            edge.receive_batch([Insert("c", 3)], 0)
        assert excinfo.value.accepted == 0
        assert excinfo.value.rejected == 1
        assert edge.depth == 2

    def test_batch_fitting_exactly_is_admitted(self):
        sink = CollectorSink()
        edge = QueuedEdge(sink, capacity=3)
        edge.receive_batch([Insert(i, i + 1) for i in range(3)], 0)
        assert edge.depth == 3
        assert edge.drain(10) == 3
        assert [e.payload for e in sink.stream] == [0, 1, 2]


class TestRuntime:
    def build_pipeline(self, stream):
        source = StreamSource(stream)
        flt = Filter(lambda p: True)
        count = WindowedCount(window=100)
        sink = CollectorSink()
        runtime = Runtime(batch=16)
        runtime.connect(source, flt)
        runtime.connect(flt, count)
        count.subscribe(sink)  # terminal hop stays direct
        return runtime, source, sink

    def test_end_to_end_matches_direct_execution(self):
        stream = small_stream(count=300, seed=140, disorder=0.2)
        runtime, source, sink = self.build_pipeline(stream)
        source.play()
        runtime.run()
        from repro.engine.query import Query

        direct = Query.from_stream(stream).then(WindowedCount(window=100)).run()
        assert sink.stream.tdb() == direct.tdb()

    def test_elements_move_one_hop_per_round(self):
        stream = small_stream(count=50, seed=141)
        runtime, source, sink = self.build_pipeline(stream)
        source.play()
        runtime.pump()  # hop 1: source queue -> filter (and filter->count queue fills)
        first_round_out = len(sink.stream)
        runtime.pump()
        assert len(sink.stream) >= first_round_out

    def test_queue_buildup_visible(self):
        stream = small_stream(count=200, seed=142)
        runtime, source, sink = self.build_pipeline(stream)
        source.play()
        peaks = runtime.peak_report()
        assert any(depth > 50 for depth in peaks.values())
        runtime.run()
        assert all(depth == 0 for depth in runtime.depth_report().values())

    def test_backpressure_pauses_upstream_drain(self):
        source = StreamSource(small_stream(count=100, seed=143))
        flt = Filter(lambda p: True)
        sink = CollectorSink()
        runtime = Runtime(batch=10)
        first = runtime.connect(source, flt)
        second = runtime.connect(flt, sink, capacity=5)
        source.play()
        runtime.pump()
        # The downstream queue (capacity 5) limits how much the upstream
        # edge may drain per round.
        assert second.depth <= 5
        assert first.depth > 0

    def test_stall_detection(self):
        """A terminal bounded queue with no consumer progress raises."""
        producer = StreamSource(small_stream(count=50, seed=144))
        stuck = Filter(lambda p: True)
        runtime = Runtime(batch=10)
        runtime.connect(producer, stuck)
        # 'stuck' emits into a full bounded edge that nothing drains...
        blocked = QueuedEdge(CollectorSink(), capacity=0)
        stuck.subscribe(blocked)
        producer.play()
        with pytest.raises(RuntimeError, match="stalled"):
            runtime.run()

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            Runtime(batch=0)

    def test_run_max_rounds(self):
        stream = small_stream(count=200, seed=145)
        runtime, source, sink = self.build_pipeline(stream)
        source.play()
        runtime.run(max_rounds=1)
        assert any(runtime.depth_report().values())
