"""Exchange operators: hash routing, stable broadcast, CTI alignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operator import CollectorSink
from repro.operators.exchange import (
    HashPartition,
    ShardUnion,
    identity_key,
    partition_batch,
)
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import MINUS_INFINITY


def build_partition(num_shards, key_fn=None):
    partition = HashPartition(num_shards, key_fn=key_fn)
    sinks = [CollectorSink(name=f"s{i}") for i in range(num_shards)]
    for port, sink in zip(partition.outputs, sinks):
        port.subscribe(sink)
    return partition, sinks


class TestHashPartition:
    def test_same_key_same_shard(self):
        partition, sinks = build_partition(4)
        for vs in range(20):
            partition.receive(Insert("hot", vs + 1, vs + 10), 0)
        populated = [sink for sink in sinks if len(sink.stream)]
        assert len(populated) == 1
        assert len(populated[0].stream) == 20

    def test_adjust_follows_its_insert(self):
        partition, sinks = build_partition(8)
        partition.receive(Insert("k", 1, 5), 0)
        partition.receive(Adjust("k", 1, 5, 9), 0)
        populated = [sink for sink in sinks if len(sink.stream)]
        assert len(populated) == 1
        assert [type(e) for e in populated[0].stream] == [Insert, Adjust]

    def test_stable_broadcast_to_all_shards(self):
        partition, sinks = build_partition(3)
        partition.receive(Insert("a", 1), 0)
        partition.receive(Stable(5), 0)
        for sink in sinks:
            assert any(
                isinstance(e, Stable) and e.vc == 5 for e in sink.stream
            )

    def test_batch_matches_per_element(self):
        elements = [Insert((i % 7, i), i + 1, i + 50) for i in range(40)]
        elements.insert(10, Stable(8))
        elements.append(Stable(60))

        single, single_sinks = build_partition(4)
        for element in elements:
            single.receive(element, 0)

        batched, batched_sinks = build_partition(4)
        batched.receive_batch(elements, 0)

        for a, b in zip(single_sinks, batched_sinks):
            assert list(a.stream) == list(b.stream)

    def test_partition_batch_preserves_per_shard_order(self):
        elements = [Insert((i % 5, i), i + 1) for i in range(30)]
        buckets = partition_batch(elements, 3)
        flattened = [e for bucket in buckets for e in bucket]
        assert sorted(e.vs for e in flattened) == [e.vs for e in elements]
        for bucket in buckets:
            vss = [e.vs for e in bucket]
            assert vss == sorted(vss)  # input order kept within a shard

    def test_partition_batch_single_shard_is_identity(self):
        elements = [Insert("a", 1), Stable(2), Insert("b", 3)]
        assert partition_batch(elements, 1) == [elements]

    def test_custom_key_fn(self):
        partition, sinks = build_partition(
            2, key_fn=lambda payload: payload[0]
        )
        for i in range(10):
            partition.receive(Insert((0, i), i + 1), 0)  # same key_fn value
        populated = [sink for sink in sinks if len(sink.stream)]
        assert len(populated) == 1

    def test_properties_pass_through(self):
        properties = StreamProperties.unknown().weaken(
            insert_only=True, ordered=True
        )
        derived = HashPartition(4).derive_properties([properties])
        assert derived == properties

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashPartition(0)


class TestShardUnion:
    def test_data_forwarded_in_arrival_order(self):
        union = ShardUnion(2)
        sink = CollectorSink()
        union.subscribe(sink)
        union.receive(Insert("a", 1), 0)
        union.receive(Insert("b", 2), 1)
        union.receive(Insert("c", 3), 0)
        assert [e.payload for e in sink.stream] == ["a", "b", "c"]

    def test_stable_waits_for_slowest_shard(self):
        union = ShardUnion(3)
        sink = CollectorSink()
        union.subscribe(sink)
        union.receive(Stable(10), 0)
        union.receive(Stable(20), 1)
        assert sink.stream.count_stables() == 0  # port 2 still at -inf
        union.receive(Stable(5), 2)
        stables = [e for e in sink.stream if isinstance(e, Stable)]
        assert [s.vc for s in stables] == [5]

    def test_frontier_is_pointwise_minimum(self):
        union = ShardUnion(2)
        sink = CollectorSink()
        union.subscribe(sink)
        script = [(0, 4), (1, 2), (0, 9), (1, 7), (1, 12), (0, 11)]
        expected = []
        frontiers = [MINUS_INFINITY, MINUS_INFINITY]
        emitted = MINUS_INFINITY
        for port, vc in script:
            union.receive(Stable(vc), port)
            frontiers[port] = max(frontiers[port], vc)
            if min(frontiers) > emitted:
                emitted = min(frontiers)
                expected.append(emitted)
        stables = [e.vc for e in sink.stream if isinstance(e, Stable)]
        assert stables == expected == [2, 7, 9, 11]
        assert union.frontiers == (11, 12)
        assert union.emitted_stable == 11

    @settings(max_examples=60, deadline=None)
    @given(
        script=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 50)), max_size=60
        )
    )
    def test_output_ctis_are_exactly_min_of_frontiers(self, script):
        """Property: the emitted CTI sequence is exactly the strictly
        increasing trace of min(shard frontiers) over the script."""
        union = ShardUnion(4)
        sink = CollectorSink()
        union.subscribe(sink)
        frontiers = [MINUS_INFINITY] * 4
        expected = []
        emitted = MINUS_INFINITY
        for port, vc in script:
            union.receive(Stable(vc), port)
            frontiers[port] = max(frontiers[port], vc)
            if min(frontiers) > emitted:
                emitted = min(frontiers)
                expected.append(emitted)
        assert [e.vc for e in sink.stream] == expected
        assert union.frontiers == tuple(frontiers)

    def test_batched_delivery_equals_per_element(self):
        elements = [
            Insert("a", 1),
            Stable(3),
            Insert("b", 4),
            Insert("c", 5),
            Stable(9),
        ]
        single = ShardUnion(2)
        single_sink = CollectorSink()
        single.subscribe(single_sink)
        batched = ShardUnion(2)
        batched_sink = CollectorSink()
        batched.subscribe(batched_sink)

        for element in elements:
            single.receive(element, 0)
        single.receive(Stable(9), 1)
        batched.receive_batch(elements, 0)
        batched.receive_batch([Stable(9)], 1)
        assert list(single_sink.stream) == list(batched_sink.stream)

    def test_unexpected_port_rejected(self):
        with pytest.raises(ValueError):
            ShardUnion(2).receive(Stable(1), 5)

    def test_ordering_guarantees_dropped(self):
        strong = StreamProperties.unknown().weaken(
            insert_only=True,
            ordered=True,
            strictly_increasing=True,
            deterministic_same_vs_order=True,
            key_vs_payload=True,
        )
        derived = ShardUnion(2).derive_properties([strong, strong])
        assert not derived.ordered
        assert not derived.strictly_increasing
        assert not derived.deterministic_same_vs_order
        assert derived.key_vs_payload  # disjoint partition keeps keys
        assert derived.insert_only


def test_identity_key_is_payload():
    assert identity_key(("a", 1)) == ("a", 1)
