"""Tests for the stateless operators, Union, and AlterLifetime."""

import pytest

from repro.engine.operator import CollectorSink, Operator
from repro.operators.alter_lifetime import AlterLifetime
from repro.operators.select import Filter, MapPayload
from repro.operators.source import StreamSource
from repro.operators.union import Union
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.tdb import TDB

from conftest import small_stream


def run_through(operator, elements, port=0):
    sink = CollectorSink()
    operator.subscribe(sink)
    for element in elements:
        operator.receive(element, port)
    return sink.stream


class TestFilter:
    def test_predicate_applied_to_inserts(self):
        out = run_through(
            Filter(lambda p: p > 5),
            [Insert(3, 1, 10), Insert(7, 2, 10)],
        )
        assert [e.payload for e in out.data_elements()] == [7]

    def test_adjusts_follow_predicate(self):
        out = run_through(
            Filter(lambda p: p > 5),
            [Insert(7, 2, 10), Adjust(7, 2, 10, 12), Adjust(3, 1, 10, 12)],
        )
        assert out.count_adjusts() == 1

    def test_stables_always_pass(self):
        out = run_through(Filter(lambda p: False), [Insert(1, 1), Stable(5)])
        assert out.count_stables() == 1
        assert out.count_inserts() == 0

    def test_properties_preserved(self):
        props = StreamProperties.strongest()
        assert Filter(lambda p: True).derive_properties([props]) == props

    def test_filtered_stream_valid(self):
        reference = small_stream(count=300, seed=41)
        out = run_through(Filter(lambda p: p[0] % 2 == 0), reference)
        out.tdb()  # strict reconstitution


class TestMapPayload:
    def test_maps_payloads(self):
        out = run_through(MapPayload(lambda p: p * 2), [Insert(3, 1, 10)])
        assert list(out)[0].payload == 6

    def test_adjust_payload_mapped(self):
        out = run_through(
            MapPayload(lambda p: p * 2),
            [Insert(3, 1, 10), Adjust(3, 1, 10, 12)],
        )
        assert list(out)[1].payload == 6

    def test_injective_keeps_key_property(self):
        props = StreamProperties(key_vs_payload=True)
        injective = MapPayload(lambda p: p, injective=True)
        assert injective.derive_properties([props]).key_vs_payload

    def test_non_injective_loses_key_property(self):
        props = StreamProperties(key_vs_payload=True)
        lossy = MapPayload(lambda p: 0)
        assert not lossy.derive_properties([props]).key_vs_payload


class TestUnion:
    def test_forwards_data_from_all_ports(self):
        union = Union(num_inputs=2)
        sink = CollectorSink()
        union.subscribe(sink)
        union.receive(Insert("a", 1), 0)
        union.receive(Insert("b", 2), 1)
        assert sink.stream.count_inserts() == 2

    def test_stable_is_min_across_inputs(self):
        union = Union(num_inputs=2)
        sink = CollectorSink()
        union.subscribe(sink)
        union.receive(Stable(10), 0)
        assert sink.stream.count_stables() == 0  # input 1 silent
        union.receive(Stable(7), 1)
        assert list(sink.stream)[-1] == Stable(7)
        union.receive(Stable(12), 1)
        assert list(sink.stream)[-1] == Stable(10)

    def test_stable_never_regresses(self):
        union = Union(num_inputs=2)
        sink = CollectorSink()
        union.subscribe(sink)
        union.receive(Stable(10), 0)
        union.receive(Stable(10), 1)
        union.receive(Stable(11), 0)  # min still 10: nothing new
        assert sink.stream.count_stables() == 1

    def test_bad_port_rejected(self):
        union = Union(num_inputs=2)
        with pytest.raises(ValueError):
            union.receive(Stable(1), 5)

    def test_zero_inputs_rejected(self):
        with pytest.raises(ValueError):
            Union(num_inputs=0)

    def test_union_output_valid_and_complete(self):
        left = small_stream(count=200, seed=42, disorder=0.0)
        right = small_stream(count=200, seed=43, disorder=0.0)
        union = Union(num_inputs=2)
        sink = CollectorSink()
        union.subscribe(sink)
        for i in range(max(len(left), len(right))):
            if i < len(left):
                union.receive(left[i], 0)
            if i < len(right):
                union.receive(right[i], 1)
        merged_tdb = sink.stream.tdb()
        expected = TDB(list(left.tdb()) + list(right.tdb()))
        expected.stable_point = merged_tdb.stable_point
        assert merged_tdb == expected


class TestAlterLifetime:
    def test_fixed_duration(self):
        out = run_through(AlterLifetime(duration=7), [Insert("a", 3, 100)])
        assert list(out)[0] == Insert("a", 3, 10)

    def test_duration_fn(self):
        operator = AlterLifetime(duration_fn=lambda payload, vs: payload)
        out = run_through(operator, [Insert(5, 3, 100)])
        assert list(out)[0] == Insert(5, 3, 8)

    def test_end_adjusts_absorbed(self):
        out = run_through(
            AlterLifetime(duration=7),
            [Insert("a", 3, 100), Adjust("a", 3, 100, 200)],
        )
        assert out.count_adjusts() == 0

    def test_cancels_propagate(self):
        out = run_through(
            AlterLifetime(duration=7),
            [Insert("a", 3, 100), Adjust("a", 3, 100, 3)],
        )
        assert out.count_adjusts() == 1
        assert len(out.tdb()) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AlterLifetime()
        with pytest.raises(ValueError):
            AlterLifetime(duration=7, duration_fn=lambda p, v: 1)
        with pytest.raises(ValueError):
            AlterLifetime(duration=0)

    def test_properties_preserved(self):
        props = StreamProperties.strongest()
        assert AlterLifetime(duration=5).derive_properties([props]) == props


class TestStreamSource:
    def test_play_emits_all(self):
        stream = small_stream(count=100, seed=44)
        source = StreamSource(stream)
        sink = CollectorSink()
        source.subscribe(sink)
        source.play()
        assert list(sink.stream) == list(stream)
        assert source.exhausted

    def test_play_with_limit(self):
        stream = small_stream(count=100, seed=44)
        source = StreamSource(stream)
        sink = CollectorSink()
        source.subscribe(sink)
        source.play(limit=10)
        assert len(sink.stream) == 10
        assert not source.exhausted

    def test_measured_properties_default(self):
        stream = small_stream(count=100, seed=44, disorder=0.0)
        source = StreamSource(stream)
        assert source.derive_properties([]).ordered

    def test_stipulated_properties_override(self):
        stream = small_stream(count=100, seed=44, disorder=0.0)
        source = StreamSource(stream, properties=StreamProperties.unknown())
        assert not source.derive_properties([]).ordered


class TestOperatorProtocol:
    def test_unimplemented_handlers_raise(self):
        class Bare(Operator):
            pass

        with pytest.raises(NotImplementedError):
            Bare().receive(Insert("a", 1), 0)

    def test_non_element_rejected(self):
        with pytest.raises(TypeError):
            CollectorSink().receive("junk") or Operator().receive("junk", 0)

    def test_subscribe_chains(self):
        first, second = Filter(lambda p: True), Filter(lambda p: True)
        assert first.subscribe(second) is second
        assert second.upstreams == (first,)
