"""Golden shapes for the analysis CLI's machine-readable reports.

CI archives these JSON documents as artifacts and downstream tooling
keys on their fields — the schemas are a contract, locked down here.
"""

import json

import pytest

from repro.analysis.cli import build_parser, main

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _run_json(tmp_path, argv):
    """Run the CLI writing JSON to a temp file; return (exit, payload)."""
    out = tmp_path / "report.json"
    code = main(argv + ["--format", "json", "--output", str(out)])
    return code, json.loads(out.read_text(encoding="utf-8"))


class TestLintReport:
    def test_schema(self, tmp_path):
        code, payload = _run_json(tmp_path, ["lint", "src/repro/analysis"])
        assert code == 0
        assert set(payload) == {
            "ok",
            "errors",
            "warnings",
            "findings",
            "stats",
        }
        assert payload["ok"] is True
        stats = payload["stats"]
        assert set(stats) >= {
            "files",
            "rules",
            "parse_seconds",
            "cfg_seconds",
            "rule_seconds",
            "cfg_functions",
            "parses_per_file",
            "wall_seconds",
        }
        # The shared-pass contract: one parse per file, ever.
        assert stats["parses_per_file"] == 1
        assert stats["files"] > 0

    def test_budget_recorded_and_enforced(self, tmp_path):
        code, payload = _run_json(
            tmp_path,
            ["lint", "src/repro/analysis", "--budget-seconds", "120"],
        )
        assert code == 0
        assert payload["stats"]["budget_seconds"] == 120.0
        assert payload["stats"]["within_budget"] is True

    def test_blown_budget_fails(self, tmp_path):
        code, payload = _run_json(
            tmp_path,
            ["lint", "src/repro/analysis", "--budget-seconds", "0.000001"],
        )
        assert code == 1
        assert payload["ok"] is False
        assert payload["stats"]["within_budget"] is False

    def test_findings_entry_shape(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
        code, payload = _run_json(tmp_path, ["lint", str(bad)])
        finding = payload["findings"][0]
        assert set(finding) >= {"path", "line", "rule", "severity", "message"}
        assert finding["rule"] == "REP106"


class TestCheckPlanReport:
    def test_schema(self, tmp_path):
        code, payload = _run_json(
            tmp_path, ["check-plan", "--plans", "examples/plans.py"]
        )
        assert code == 0
        assert set(payload) == {"ok", "plans"}
        assert payload["ok"] is True
        plan = payload["plans"][0]
        assert set(plan) == {"plan", "ok", "sites", "punctuation"}
        site = plan["sites"][0]
        assert set(site) == {
            "merge",
            "algorithm",
            "selected",
            "inferred",
            "input_properties",
            "verdict",
            "message",
        }
        entry = plan["punctuation"][0]
        assert set(entry) == {"class", "verdict", "operators", "sites"}
        assert all(
            p["verdict"] in ("proved", "unknown") for p in plan["punctuation"]
        )


class TestProtocolReport:
    def test_schema(self, tmp_path):
        code, payload = _run_json(tmp_path, ["protocol"])
        assert code == 0
        assert set(payload) == {"protocol", "ok", "sites", "summary"}
        assert payload["ok"] is True
        assert payload["summary"]["violations"] == 0
        site = payload["sites"][0]
        assert set(site) >= {
            "path",
            "line",
            "function",
            "role",
            "ring",
            "op",
            "kind",
            "violations",
        }

    def test_violating_fixture_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad_worker.py"
        bad.write_text(
            "def shard_loop(in_ring, out_ring):\n"
            "    out_ring.put(TELEM, stats)\n",
            encoding="utf-8",
        )
        code, payload = _run_json(tmp_path, ["protocol", str(bad)])
        assert code == 1
        assert payload["ok"] is False


class TestModelReport:
    def test_schema(self, tmp_path):
        code, payload = _run_json(tmp_path, ["model"])
        assert code == 0
        assert set(payload) >= {
            "params",
            "ok",
            "states",
            "transitions",
            "terminal_states",
            "properties",
            "violations",
            "wall_seconds",
        }
        assert payload["ok"] is True
        assert payload["violations"] == []

    def test_mutation_exits_nonzero_with_trace(self, tmp_path):
        code, payload = _run_json(
            tmp_path, ["model", "--mutate", "no_dedup"]
        )
        assert code == 1
        assert payload["ok"] is False
        assert payload["violations"][0]["trace"]


class TestRulesCommand:
    def test_json_catalog(self, tmp_path):
        code, payload = _run_json(tmp_path, ["rules"])
        assert code == 0
        ids = [entry["id"] for entry in payload]
        assert "REP101" in ids and "REP113" in ids
        assert all(
            set(entry) == {"id", "severity", "summary"} for entry in payload
        )

    def test_markdown_catalog(self, tmp_path, capsys):
        code = main(["rules", "--format", "markdown"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("| rule | severity | meaning |")
        assert "REP110" in out

    def test_check_docs_in_sync(self):
        assert main(["rules", "--check-docs"]) == 0

    def test_check_docs_detects_drift(self, tmp_path, capsys):
        from repro.analysis.lint import (
            CATALOG_BEGIN_LINE,
            CATALOG_END_LINE,
        )

        stale = tmp_path / "ANALYSIS.md"
        stale.write_text(
            f"# Rules\n\n{CATALOG_BEGIN_LINE}\n| stale |\n"
            f"{CATALOG_END_LINE}\n",
            encoding="utf-8",
        )
        assert main(["rules", "--check-docs", "--docs", str(stale)]) == 1
        # --write-docs repairs it in place.
        assert main(["rules", "--write-docs", "--docs", str(stale)]) == 0
        assert main(["rules", "--check-docs", "--docs", str(stale)]) == 0

    def test_missing_markers_is_an_error(self, tmp_path):
        bare = tmp_path / "ANALYSIS.md"
        bare.write_text("# No markers here\n", encoding="utf-8")
        assert main(["rules", "--check-docs", "--docs", str(bare)]) == 2


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("lint", "check-plan", "protocol", "model", "rules"):
            assert command in text
