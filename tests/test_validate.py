"""Incremental stream-contract checker."""

import pytest

from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.tdb import StreamViolationError
from repro.temporal.validate import StreamContractChecker, validate_stream
from repro.temporal.time import INFINITY

from conftest import divergent_inputs, small_stream


class TestInsertRules:
    def test_valid_insert(self):
        checker = StreamContractChecker()
        checker.check(Insert("a", 1, 5))
        assert checker.elements_checked == 1

    def test_insert_behind_stable_rejected(self):
        checker = StreamContractChecker()
        checker.check(Stable(10))
        with pytest.raises(StreamViolationError):
            checker.check(Insert("a", 5, 20))

    def test_insert_at_stable_point_ok(self):
        checker = StreamContractChecker()
        checker.check(Stable(10))
        checker.check(Insert("a", 10, 20))

    def test_duplicate_key_allowed_by_default(self):
        checker = StreamContractChecker()
        checker.check(Insert("a", 1, 5))
        checker.check(Insert("a", 1, 9))

    def test_duplicate_key_rejected_when_enforced(self):
        checker = StreamContractChecker(enforce_key=True)
        checker.check(Insert("a", 1, 5))
        with pytest.raises(StreamViolationError):
            checker.check(Insert("a", 1, 9))


class TestAdjustRules:
    def test_valid_adjust_chain(self):
        checker = StreamContractChecker()
        checker.check(Insert("a", 1, 5))
        checker.check(Adjust("a", 1, 5, 9))
        checker.check(Adjust("a", 1, 9, 7))

    def test_adjust_unknown_event_rejected(self):
        checker = StreamContractChecker()
        with pytest.raises(StreamViolationError):
            checker.check(Adjust("a", 1, 5, 9))

    def test_adjust_wrong_version_rejected(self):
        checker = StreamContractChecker()
        checker.check(Insert("a", 1, 5))
        with pytest.raises(StreamViolationError):
            checker.check(Adjust("a", 1, 6, 9))

    def test_adjust_behind_stable_rejected(self):
        checker = StreamContractChecker()
        checker.check(Insert("a", 1, 5))
        checker.check(Stable(10))
        with pytest.raises(StreamViolationError):
            checker.check(Adjust("a", 1, 5, 9))

    def test_cancel_retires_key(self):
        checker = StreamContractChecker()
        checker.check(Insert("a", 1, 5))
        checker.check(Adjust("a", 1, 5, 1))
        assert checker.live_keys == 0
        with pytest.raises(StreamViolationError):
            checker.check(Adjust("a", 1, 5, 9))


class TestStableRules:
    def test_stable_retires_frozen_keys(self):
        checker = StreamContractChecker()
        checker.check(Insert("short", 1, 5))
        checker.check(Insert("long", 2, 100))
        checker.check(Stable(50))
        assert checker.live_keys == 1  # "long" survives

    def test_regressions_counted_not_raised(self):
        checker = StreamContractChecker()
        checker.check(Stable(10))
        checker.check(Stable(5))
        assert checker.stable_regressions == 1
        assert checker.stable_point == 10

    def test_state_bounded_by_live_region(self):
        """State does not grow with stream length when punctuation flows."""
        checker = StreamContractChecker()
        for index in range(2000):
            checker.check(Insert(("p", index), index, index + 5))
            if index % 50 == 0 and index:
                checker.check(Stable(index - 10))
        assert checker.live_keys < 100


class TestWholeStreams:
    def test_generated_streams_validate(self):
        stream = small_stream(count=500, seed=120, disorder=0.4)
        checker = validate_stream(stream, enforce_key=True)
        assert checker.elements_checked == len(stream)
        assert checker.stable_point == INFINITY

    def test_divergent_streams_validate(self):
        reference = small_stream(count=300, seed=121)
        for stream in divergent_inputs(reference, speculate_fraction=0.5):
            validate_stream(stream)

    def test_merge_outputs_validate(self):
        from repro.lmerge.r3 import LMergeR3

        reference = small_stream(count=300, seed=122)
        inputs = divergent_inputs(reference, speculate_fraction=0.4)
        merge = LMergeR3()
        output = merge.merge(inputs, schedule="random", seed=6)
        validate_stream(output, enforce_key=True)

    def test_agrees_with_strict_reconstitution(self):
        """Checker and strict TDB accept/reject the same streams."""
        from repro.temporal.tdb import reconstitute

        bad = [Insert("a", 1, 5), Stable(10), Insert("b", 2, 20)]
        with pytest.raises(StreamViolationError):
            reconstitute(bad)
        with pytest.raises(StreamViolationError):
            validate_stream(bad)

    def test_non_element_rejected(self):
        with pytest.raises(TypeError):
            StreamContractChecker().check("junk")
