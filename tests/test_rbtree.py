"""Tests for the red-black tree, including model-based property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert not tree
        assert 1 not in tree
        assert tree.get(1) is None
        assert tree.get(1, "d") == "d"

    def test_insert_and_get(self):
        tree = RedBlackTree()
        assert tree.insert(1, "one")
        assert tree.get(1) == "one"
        assert 1 in tree
        assert len(tree) == 1

    def test_insert_replaces_value(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        assert not tree.insert(1, "uno")
        assert tree.get(1) == "uno"
        assert len(tree) == 1

    def test_delete(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        assert tree.delete(1)
        assert 1 not in tree
        assert not tree.delete(1)

    def test_pop(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        assert tree.pop(1) == "one"
        with pytest.raises(KeyError):
            tree.pop(1)
        assert tree.pop(1, "d") == "d"

    def test_min_max(self):
        tree = RedBlackTree()
        for key in [5, 2, 8, 1, 9]:
            tree.insert(key, key * 10)
        assert tree.min_item() == (1, 10)
        assert tree.max_item() == (9, 90)

    def test_min_max_empty_raise(self):
        with pytest.raises(KeyError):
            RedBlackTree().min_item()
        with pytest.raises(KeyError):
            RedBlackTree().max_item()

    def test_items_sorted(self):
        tree = RedBlackTree()
        keys = [5, 2, 8, 1, 9, 3]
        for key in keys:
            tree.insert(key, None)
        assert list(tree.keys()) == sorted(keys)

    def test_values_follow_keys(self):
        tree = RedBlackTree()
        for key in [3, 1, 2]:
            tree.insert(key, key * 2)
        assert list(tree.values()) == [2, 4, 6]


class TestItemsBelow:
    def setup_method(self):
        self.tree = RedBlackTree()
        for key in range(0, 20, 2):  # 0, 2, ..., 18
            self.tree.insert(key, key)

    def test_exclusive_bound(self):
        assert [k for k, _ in self.tree.items_below(6)] == [0, 2, 4]

    def test_bound_on_present_key_excluded(self):
        assert [k for k, _ in self.tree.items_below(4)] == [0, 2]

    def test_inclusive_bound(self):
        assert [k for k, _ in self.tree.items_below(4, inclusive=True)] == [0, 2, 4]

    def test_bound_below_min(self):
        assert list(self.tree.items_below(-1)) == []

    def test_bound_above_max(self):
        assert [k for k, _ in self.tree.items_below(100)] == list(range(0, 20, 2))

    def test_empty_tree(self):
        assert list(RedBlackTree().items_below(10)) == []


class TestInvariantsUnderChurn:
    def test_random_churn_keeps_invariants(self):
        rng = random.Random(42)
        tree = RedBlackTree()
        model = {}
        for step in range(3000):
            key = rng.randrange(300)
            if rng.random() < 0.55:
                tree.insert(key, step)
                model[key] = step
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            if step % 250 == 0:
                tree.check_invariants()
                assert list(tree.items()) == sorted(model.items())
        tree.check_invariants()
        assert list(tree.items()) == sorted(model.items())

    def test_ascending_insert_then_full_delete(self):
        tree = RedBlackTree()
        for key in range(500):
            tree.insert(key, key)
        tree.check_invariants()
        for key in range(500):
            assert tree.delete(key)
        assert len(tree) == 0
        tree.check_invariants()

    def test_descending_insert(self):
        tree = RedBlackTree()
        for key in range(500, 0, -1):
            tree.insert(key, key)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1, 501))

    def test_black_height_logarithmic(self):
        tree = RedBlackTree()
        for key in range(2048):
            tree.insert(key, None)
        black_height = tree.check_invariants()
        # A red-black tree with n nodes has black height <= log2(n+1).
        assert black_height <= 12


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 50)),
        max_size=120,
    )
)
def test_model_equivalence(ops):
    """Property: the tree behaves exactly like a sorted dict."""
    tree = RedBlackTree()
    model = {}
    for op, key in ops:
        if op == "ins":
            tree.insert(key, key)
            model[key] = key
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    tree.check_invariants()
    assert list(tree.items()) == sorted(model.items())
    assert len(tree) == len(model)


@settings(max_examples=100, deadline=None)
@given(
    keys=st.sets(st.integers(-1000, 1000), max_size=80),
    bound=st.integers(-1000, 1000),
)
def test_items_below_matches_filter(keys, bound):
    tree = RedBlackTree()
    for key in keys:
        tree.insert(key, None)
    expected = sorted(k for k in keys if k < bound)
    assert [k for k, _ in tree.items_below(bound)] == expected
    expected_inc = sorted(k for k in keys if k <= bound)
    assert [k for k, _ in tree.items_below(bound, inclusive=True)] == expected_inc


class TestDeleteBelow:
    """The PR 8 range-delete: one ordered walk, not N single deletes."""

    def test_deletes_prefix(self):
        tree = RedBlackTree()
        for key in range(20):
            tree.insert(key, key * 10)
        assert tree.delete_below(7) == 7
        tree.check_invariants()
        assert list(tree.keys()) == list(range(7, 20))

    def test_bound_is_exclusive(self):
        tree = RedBlackTree()
        for key in (1, 2, 3):
            tree.insert(key, None)
        assert tree.delete_below(2) == 1
        assert list(tree.keys()) == [2, 3]

    def test_keep_predicate_retains(self):
        tree = RedBlackTree()
        for key in range(10):
            tree.insert(key, key)
        kept = tree.delete_below(10, keep=lambda k, v: k % 3 == 0)
        assert kept == 6  # 1,2,4,5,7,8 deleted; 0,3,6,9 kept
        tree.check_invariants()
        assert list(tree.keys()) == [0, 3, 6, 9]

    def test_on_delete_sees_every_victim(self):
        tree = RedBlackTree()
        for key in range(8):
            tree.insert(key, f"v{key}")
        seen = []
        tree.delete_below(5, on_delete=seen.append)
        assert seen == ["v0", "v1", "v2", "v3", "v4"]

    def test_empty_and_out_of_range(self):
        tree = RedBlackTree()
        assert tree.delete_below(100) == 0
        tree.insert(50, None)
        assert tree.delete_below(10) == 0
        assert len(tree) == 1


class TestExtractRangeAndBetween:
    def test_extract_range(self):
        tree = RedBlackTree()
        for key in range(10):
            tree.insert(key, key * 2)
        pairs = tree.extract_range(3, 7)
        assert pairs == [(3, 6), (4, 8), (5, 10), (6, 12)]
        tree.check_invariants()
        assert list(tree.keys()) == [0, 1, 2, 7, 8, 9]

    def test_items_between(self):
        tree = RedBlackTree()
        for key in range(10):
            tree.insert(key, None)
        assert [k for k, _ in tree.items_between(2, 6)] == [2, 3, 4, 5]
        assert [k for k, _ in tree.items_between(None, 3)] == [0, 1, 2]

    def test_clear_empties_and_reuses(self):
        tree = RedBlackTree()
        for key in range(100):
            tree.insert(key, None)
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.insert(1, "back")
        assert tree.get(1) == "back"
        tree.check_invariants()


class TestNodePool:
    def test_steady_state_reuses_nodes(self):
        from repro.structures.rbtree import NODE_POOL

        tree = RedBlackTree()
        for key in range(64):
            tree.insert(key, key)
        tree.delete_below(64)
        before = NODE_POOL.stats()
        for key in range(64):
            tree.insert(key, key)
        after = NODE_POOL.stats()
        # Every re-insert should have come from the freelist.
        assert after["reused"] - before["reused"] == 64
        assert after["allocated"] == before["allocated"]
        tree.check_invariants()

    def test_recycled_nodes_carry_no_stale_state(self):
        tree = RedBlackTree()
        for key in range(32):
            tree.insert(key, f"old{key}")
        tree.clear()
        for key in range(32, 0, -1):
            tree.insert(key, f"new{key}")
        tree.check_invariants()
        assert [v for _, v in tree.items()] == [
            f"new{k}" for k in range(1, 33)
        ]


@settings(max_examples=150, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["ins", "del", "below", "extract"]),
            st.integers(0, 60),
        ),
        max_size=100,
    )
)
def test_range_ops_model_equivalence(ops):
    """Property: interleaved inserts, deletes, delete_below and
    extract_range behave exactly like a sorted dict, with invariants and
    node pooling in play throughout."""
    tree = RedBlackTree()
    model = {}
    for op, key in ops:
        if op == "ins":
            tree.insert(key, key)
            model[key] = key
        elif op == "del":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        elif op == "below":
            expected = sorted(k for k in model if k < key)
            assert tree.delete_below(key) == len(expected)
            for k in expected:
                del model[k]
        else:  # extract [key, key+10)
            expected_pairs = sorted(
                (k, v) for k, v in model.items() if key <= k < key + 10
            )
            assert tree.extract_range(key, key + 10) == expected_pairs
            for k, _ in expected_pairs:
                del model[k]
    tree.check_invariants()
    assert list(tree.items()) == sorted(model.items())
    assert len(tree) == len(model)


@settings(max_examples=100, deadline=None)
@given(
    keys=st.sets(st.integers(-100, 100), max_size=60),
    bound=st.integers(-100, 100),
    mod=st.integers(2, 5),
)
def test_delete_below_keep_matches_filter(keys, bound, mod):
    tree = RedBlackTree()
    for key in keys:
        tree.insert(key, key)
    deleted = tree.delete_below(bound, keep=lambda k, v: k % mod == 0)
    expected_gone = sorted(k for k in keys if k < bound and k % mod != 0)
    assert deleted == len(expected_gone)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(k for k in keys if k not in expected_gone)
