"""Tests for the red-black tree, including model-based property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert not tree
        assert 1 not in tree
        assert tree.get(1) is None
        assert tree.get(1, "d") == "d"

    def test_insert_and_get(self):
        tree = RedBlackTree()
        assert tree.insert(1, "one")
        assert tree.get(1) == "one"
        assert 1 in tree
        assert len(tree) == 1

    def test_insert_replaces_value(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        assert not tree.insert(1, "uno")
        assert tree.get(1) == "uno"
        assert len(tree) == 1

    def test_delete(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        assert tree.delete(1)
        assert 1 not in tree
        assert not tree.delete(1)

    def test_pop(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        assert tree.pop(1) == "one"
        with pytest.raises(KeyError):
            tree.pop(1)
        assert tree.pop(1, "d") == "d"

    def test_min_max(self):
        tree = RedBlackTree()
        for key in [5, 2, 8, 1, 9]:
            tree.insert(key, key * 10)
        assert tree.min_item() == (1, 10)
        assert tree.max_item() == (9, 90)

    def test_min_max_empty_raise(self):
        with pytest.raises(KeyError):
            RedBlackTree().min_item()
        with pytest.raises(KeyError):
            RedBlackTree().max_item()

    def test_items_sorted(self):
        tree = RedBlackTree()
        keys = [5, 2, 8, 1, 9, 3]
        for key in keys:
            tree.insert(key, None)
        assert list(tree.keys()) == sorted(keys)

    def test_values_follow_keys(self):
        tree = RedBlackTree()
        for key in [3, 1, 2]:
            tree.insert(key, key * 2)
        assert list(tree.values()) == [2, 4, 6]


class TestItemsBelow:
    def setup_method(self):
        self.tree = RedBlackTree()
        for key in range(0, 20, 2):  # 0, 2, ..., 18
            self.tree.insert(key, key)

    def test_exclusive_bound(self):
        assert [k for k, _ in self.tree.items_below(6)] == [0, 2, 4]

    def test_bound_on_present_key_excluded(self):
        assert [k for k, _ in self.tree.items_below(4)] == [0, 2]

    def test_inclusive_bound(self):
        assert [k for k, _ in self.tree.items_below(4, inclusive=True)] == [0, 2, 4]

    def test_bound_below_min(self):
        assert list(self.tree.items_below(-1)) == []

    def test_bound_above_max(self):
        assert [k for k, _ in self.tree.items_below(100)] == list(range(0, 20, 2))

    def test_empty_tree(self):
        assert list(RedBlackTree().items_below(10)) == []


class TestInvariantsUnderChurn:
    def test_random_churn_keeps_invariants(self):
        rng = random.Random(42)
        tree = RedBlackTree()
        model = {}
        for step in range(3000):
            key = rng.randrange(300)
            if rng.random() < 0.55:
                tree.insert(key, step)
                model[key] = step
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            if step % 250 == 0:
                tree.check_invariants()
                assert list(tree.items()) == sorted(model.items())
        tree.check_invariants()
        assert list(tree.items()) == sorted(model.items())

    def test_ascending_insert_then_full_delete(self):
        tree = RedBlackTree()
        for key in range(500):
            tree.insert(key, key)
        tree.check_invariants()
        for key in range(500):
            assert tree.delete(key)
        assert len(tree) == 0
        tree.check_invariants()

    def test_descending_insert(self):
        tree = RedBlackTree()
        for key in range(500, 0, -1):
            tree.insert(key, key)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1, 501))

    def test_black_height_logarithmic(self):
        tree = RedBlackTree()
        for key in range(2048):
            tree.insert(key, None)
        black_height = tree.check_invariants()
        # A red-black tree with n nodes has black height <= log2(n+1).
        assert black_height <= 12


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 50)),
        max_size=120,
    )
)
def test_model_equivalence(ops):
    """Property: the tree behaves exactly like a sorted dict."""
    tree = RedBlackTree()
    model = {}
    for op, key in ops:
        if op == "ins":
            tree.insert(key, key)
            model[key] = key
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    tree.check_invariants()
    assert list(tree.items()) == sorted(model.items())
    assert len(tree) == len(model)


@settings(max_examples=100, deadline=None)
@given(
    keys=st.sets(st.integers(-1000, 1000), max_size=80),
    bound=st.integers(-1000, 1000),
)
def test_items_below_matches_filter(keys, bound):
    tree = RedBlackTree()
    for key in keys:
        tree.insert(key, None)
    expected = sorted(k for k in keys if k < bound)
    assert [k for k, _ in tree.items_below(bound)] == expected
    expected_inc = sorted(k for k in keys if k <= bound)
    assert [k for k, _ in tree.items_below(bound, inclusive=True)] == expected_inc
