"""Randomized failure sequences.

The strongest HA property tests: random interleaves of three divergent
replicas with random detach / re-attach events.

* With PAUSE recovery (the replica resumes where it stopped), every
  input prefix remains a true prefix of the reference stream, so the
  full C1-C3 oracle applies at every stable — including the detached
  replica's final prefix, which remains a valid witness (its frozen
  content still constrains every consistent future).
* With GAP recovery (the replica loses its backlog) the gapped prefix is
  no longer a reference prefix, so only the end-to-end guarantee is
  checked: as long as replica 0 survives throughout, the merged output
  is the logical stream.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.temporal.elements import Stable
from repro.temporal.tdb import TDB
from repro.theory.compatibility import check_r3_compatibility

from conftest import divergent_inputs, small_stream


def run_with_failures(merge_cls, seed, n_failures, gap, oracle):
    rng = random.Random(seed)
    reference = small_stream(count=180, seed=seed % 19, stable_freq=0.08)
    # Gap recovery loses arbitrary elements; with speculation the gapped
    # replica could freeze a transient value, so the gap variant runs on
    # revision-free inputs (the paper's Section V-C regime).
    speculate = 0.0 if gap else 0.3
    inputs = divergent_inputs(reference, n=3, speculate_fraction=speculate)
    merge = merge_cls()
    cursors = [0, 0, 0]
    attached = [True, True, True]
    for stream_id in range(3):
        merge.attach(stream_id)
    input_tdbs = [TDB() for _ in inputs]
    output_tdb = TDB()
    out_cursor = 0
    # Failure plan: replica 0 never fails, guaranteeing coverage.
    failures = [
        (rng.choice([1, 2]), rng.randint(20, 400), rng.randint(10, 80))
        for _ in range(n_failures)
    ]
    down_until = {}
    step = 0
    while any(cursors[i] < len(inputs[i]) for i in range(3) if attached[i]):
        step += 1
        for victim, at_step, down in failures:
            if step == at_step and attached[victim]:
                merge.detach(victim)
                attached[victim] = False
                down_until[victim] = step + down
        for victim, recover_at in list(down_until.items()):
            if step >= recover_at and not attached[victim]:
                if gap:
                    # The replica lost its backlog: it cannot vouch for
                    # any fixed horizon, so it joins with an infinite
                    # guarantee point (it may drive progress but never
                    # overrules content it might have missed).
                    from repro.temporal.time import INFINITY

                    merge.attach(victim, guarantee_from=INFINITY)
                    cursors[victim] = min(
                        len(inputs[victim]), cursors[victim] + recover_at // 4
                    )
                else:
                    # Pause-resume: nothing was lost; state retained.
                    merge.attach(victim, guarantee_from=merge.max_stable)
                attached[victim] = True
                del down_until[victim]
        live = [
            i for i in range(3) if attached[i] and cursors[i] < len(inputs[i])
        ]
        if not live:
            break
        stream_id = rng.choice(live)
        element = inputs[stream_id][cursors[stream_id]]
        cursors[stream_id] += 1
        merge.process(element, stream_id)
        # Gapped replicas deliver orphan adjusts (their inserts were
        # skipped); track their TDBs leniently.
        if gap:
            input_tdbs[stream_id].strict = False
        input_tdbs[stream_id].apply(element)
        while out_cursor < len(merge.output):
            output_tdb.apply(merge.output[out_cursor])
            out_cursor += 1
        if oracle and isinstance(element, Stable):
            # All prefixes — including detached replicas' final ones —
            # are valid witnesses under PAUSE semantics.
            violations = check_r3_compatibility(input_tdbs, output_tdb)
            assert not violations, "; ".join(str(v) for v in violations)
    return merge, reference.tdb()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n_failures=st.integers(0, 2))
def test_r3_pause_failures_with_oracle(seed, n_failures):
    merge, reference_tdb = run_with_failures(
        LMergeR3, seed, n_failures, gap=False, oracle=True
    )
    assert merge.output.tdb() == reference_tdb


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n_failures=st.integers(1, 3))
def test_r3_gap_failures_final_equivalence(seed, n_failures):
    merge, reference_tdb = run_with_failures(
        LMergeR3, seed, n_failures, gap=True, oracle=False
    )
    assert merge.output.tdb() == reference_tdb


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6), n_failures=st.integers(0, 2))
def test_r4_pause_failures(seed, n_failures):
    merge, reference_tdb = run_with_failures(
        LMergeR4, seed, n_failures, gap=False, oracle=False
    )
    assert merge.output.tdb() == reference_tdb
