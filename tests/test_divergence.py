"""Tests for physical-divergence transforms: every equivalence-preserving
transform must leave the logical TDB unchanged."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.divergence import (
    diverge,
    duplicate_inserts,
    inject_gap,
    reorder_within_stability,
    speculate,
    thin_stables,
)
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.temporal.elements import Stable
from repro.temporal.time import INFINITY


def make_reference(seed=0, count=600, disorder=0.2, stable_freq=0.05):
    config = GeneratorConfig(
        count=count,
        seed=seed,
        disorder=disorder,
        stable_freq=stable_freq,
        payload_blob_bytes=4,
        event_duration=100,
    )
    return StreamGenerator(config).generate()


class TestReorder:
    def test_preserves_tdb(self):
        reference = make_reference()
        shuffled = reorder_within_stability(reference, random.Random(1))
        assert shuffled.tdb() == reference.tdb()

    def test_changes_physical_order(self):
        reference = make_reference()
        shuffled = reorder_within_stability(reference, random.Random(1))
        assert shuffled != reference

    def test_prefixes_stay_valid(self):
        """Every prefix of the reordered stream is a legal stream."""
        reference = make_reference(count=200)
        shuffled = reorder_within_stability(reference, random.Random(3))
        shuffled.tdb()  # strict reconstitution validates prefixes implicitly

    def test_stable_positions_fixed(self):
        reference = make_reference()
        shuffled = reorder_within_stability(reference, random.Random(1))
        original_positions = [
            i for i, e in enumerate(reference) if isinstance(e, Stable)
        ]
        shuffled_positions = [
            i for i, e in enumerate(shuffled) if isinstance(e, Stable)
        ]
        assert original_positions == shuffled_positions


class TestSpeculate:
    def test_preserves_tdb(self):
        reference = make_reference()
        speculated = speculate(reference, random.Random(2), fraction=0.5)
        assert speculated.tdb() == reference.tdb()

    def test_introduces_adjusts(self):
        reference = make_reference()
        speculated = speculate(reference, random.Random(2), fraction=0.5)
        assert speculated.count_adjusts() > 0
        assert reference.count_adjusts() == 0

    def test_fraction_zero_is_identity(self):
        reference = make_reference()
        unchanged = speculate(reference, random.Random(2), fraction=0.0)
        assert list(unchanged) == list(reference)

    def test_stream_remains_valid(self):
        reference = make_reference()
        speculated = speculate(reference, random.Random(7), fraction=1.0)
        speculated.tdb()  # strict

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            speculate(make_reference(), random.Random(0), fraction=1.5)


class TestThinStables:
    def test_preserves_tdb(self):
        reference = make_reference(stable_freq=0.2)
        thinned = thin_stables(reference, random.Random(4), keep_probability=0.3)
        assert thinned.tdb() == reference.tdb()

    def test_removes_stables(self):
        reference = make_reference(stable_freq=0.2)
        thinned = thin_stables(reference, random.Random(4), keep_probability=0.1)
        assert thinned.count_stables() < reference.count_stables()

    def test_keeps_final_infinity(self):
        reference = make_reference(stable_freq=0.2)
        thinned = thin_stables(reference, random.Random(4), keep_probability=0.0)
        assert thinned[-1] == Stable(INFINITY)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            thin_stables(make_reference(), random.Random(0), keep_probability=2.0)


class TestGap:
    def test_gap_removes_elements(self):
        reference = make_reference()
        gapped = inject_gap(reference, random.Random(5), gap_fraction=0.2)
        assert gapped.count_inserts() < reference.count_inserts()

    def test_gap_stream_remains_internally_valid(self):
        reference = make_reference()
        gapped = inject_gap(reference, random.Random(5), gap_fraction=0.2)
        gapped.tdb()  # no dangling adjusts

    def test_gap_not_equivalent(self):
        reference = make_reference()
        gapped = inject_gap(reference, random.Random(5), gap_fraction=0.2)
        assert gapped.tdb() != reference.tdb()

    def test_zero_fraction_identity(self):
        reference = make_reference()
        gapped = inject_gap(reference, random.Random(5), gap_fraction=0.0)
        assert list(gapped) == list(reference)


class TestDuplicates:
    def test_duplicates_added(self):
        reference = make_reference()
        duplicated = duplicate_inserts(reference, random.Random(6), fraction=0.3)
        assert duplicated.count_inserts() > reference.count_inserts()

    def test_duplicated_stream_valid_as_multiset(self):
        reference = make_reference()
        duplicated = duplicate_inserts(reference, random.Random(6), fraction=0.3)
        tdb = duplicated.tdb()
        assert not tdb.key_is_unique()


class TestDivergeComposition:
    def test_composed_preserves_tdb(self):
        reference = make_reference()
        for seed in range(5):
            divergent = diverge(
                reference,
                seed=seed,
                speculate_fraction=0.4,
                stable_keep_probability=0.5,
            )
            assert divergent.tdb() == reference.tdb(), f"seed {seed}"

    def test_distinct_seeds_distinct_streams(self):
        reference = make_reference()
        first = diverge(reference, seed=0, speculate_fraction=0.4)
        second = diverge(reference, seed=1, speculate_fraction=0.4)
        assert first != second


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    fraction=st.floats(0.0, 1.0),
    keep=st.floats(0.0, 1.0),
)
def test_diverge_always_equivalent(seed, fraction, keep):
    """Property: any composition of the equivalence-preserving transforms
    yields a stream with the same logical TDB."""
    reference = make_reference(seed=seed % 7, count=150)
    divergent = diverge(
        reference,
        seed=seed,
        speculate_fraction=fraction,
        stable_keep_probability=keep,
    )
    assert divergent.tdb() == reference.tdb()
