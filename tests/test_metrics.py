"""Tests for metric probes."""

import pytest

from repro.metrics.collector import (
    AppTimeLatencyProbe,
    MemoryProbe,
    ThroughputTimeline,
    wall_clock_throughput,
)
from repro.temporal.elements import Insert, Stable


class TestThroughputTimeline:
    def test_bucketing(self):
        timeline = ThroughputTimeline(bucket=1.0)
        timeline.record(0.2)
        timeline.record(0.8)
        timeline.record(2.5)
        assert timeline.series() == [(0.0, 2), (1.0, 0), (2.0, 1)]
        assert timeline.total == 3

    def test_negative_sim_time_buckets_survive(self):
        """Regression: series() used to start at bucket 0, silently
        dropping everything recorded at negative simulation time."""
        timeline = ThroughputTimeline(bucket=1.0)
        timeline.record(-2.5, count=3)
        timeline.record(0.5)
        assert timeline.series() == [(-3.0, 3), (-2.0, 0), (-1.0, 0), (0.0, 1)]
        assert timeline.total == 4
        assert timeline.rates() == [3.0, 0.0, 0.0, 1.0]

    def test_all_negative_buckets(self):
        timeline = ThroughputTimeline(bucket=1.0)
        timeline.record(-5.0, count=2)
        assert timeline.series() == [(-5.0, 2)]

    def test_rates(self):
        timeline = ThroughputTimeline(bucket=0.5)
        timeline.record(0.1, count=5)
        assert timeline.rates() == [10.0]

    def test_empty_series(self):
        assert ThroughputTimeline().series() == []
        assert ThroughputTimeline().coefficient_of_variation() == 0.0

    def test_cv_zero_for_steady_rate(self):
        timeline = ThroughputTimeline(bucket=1.0)
        for second in range(10):
            timeline.record(second + 0.5, count=100)
        assert timeline.coefficient_of_variation() == pytest.approx(0.0)

    def test_cv_positive_for_bursty_rate(self):
        timeline = ThroughputTimeline(bucket=1.0)
        for second in range(10):
            timeline.record(second + 0.5, count=200 if second % 2 else 1)
        assert timeline.coefficient_of_variation() > 0.5

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            ThroughputTimeline(bucket=0)


class TestMemoryProbe:
    def test_sampling_interval(self):
        values = iter(range(100))
        probe = MemoryProbe(lambda: next(values), interval=10)
        for _ in range(35):
            probe.tick()
        assert len(probe.samples) == 3

    def test_peak_and_mean(self):
        values = iter([10, 50, 30])
        probe = MemoryProbe(lambda: next(values), interval=1)
        for _ in range(3):
            probe.tick()
        assert probe.peak == 50
        assert probe.mean == pytest.approx(30.0)

    def test_explicit_sample(self):
        probe = MemoryProbe(lambda: 7, interval=1000)
        assert probe.sample() == 7
        assert probe.samples == [7]

    def test_empty_probe(self):
        probe = MemoryProbe(lambda: 7)
        assert probe.peak == 0
        assert probe.mean == 0.0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            MemoryProbe(lambda: 0, interval=0)


class TestAppTimeLatencyProbe:
    def test_latency_measured_against_frontier(self):
        probe = AppTimeLatencyProbe()
        probe.observe_input(Insert("a", 100, 200))
        probe.observe_output(Insert("a", 90, 200))
        assert probe.latencies == [10]

    def test_frontier_monotone(self):
        probe = AppTimeLatencyProbe()
        probe.observe_input(Insert("a", 100, 200))
        probe.observe_input(Insert("b", 50, 200))  # disordered: no regression
        probe.observe_output(Insert("b", 50, 200))
        assert probe.latencies == [50]

    def test_stables_ignored(self):
        probe = AppTimeLatencyProbe()
        probe.observe_input(Stable(500))
        probe.observe_input(Insert("a", 100, 200))
        probe.observe_output(Stable(500))
        assert probe.latencies == []

    def test_percentile_and_mean(self):
        probe = AppTimeLatencyProbe()
        probe.observe_input(Insert("x", 100, 200))
        for vs in (90, 80, 70, 60):
            probe.observe_output(Insert("y", vs, 200))
        assert probe.mean == pytest.approx(25.0)
        assert probe.percentile(0.99) == 40
        assert probe.percentile(0.0) == 10

    def test_percentile_boundaries_nearest_rank(self):
        """Regression: the percentile is ceil-based nearest rank — the
        2-sample median is the lower sample and q=1.0 is exactly the
        max (the old index arithmetic overshot on small samples)."""
        probe = AppTimeLatencyProbe()
        probe.observe_input(Insert("x", 100, 200))
        probe.observe_output(Insert("y", 90, 200))   # latency 10
        probe.observe_output(Insert("y", 70, 200))   # latency 30
        assert probe.percentile(0.5) == 10
        assert probe.percentile(0.51) == 30
        assert probe.percentile(1.0) == 30
        assert probe.percentile(0.0) == 10

    def test_percentile_single_sample(self):
        probe = AppTimeLatencyProbe()
        probe.observe_input(Insert("x", 100, 200))
        probe.observe_output(Insert("y", 95, 200))
        for q in (0.0, 0.5, 0.99, 1.0):
            assert probe.percentile(q) == 5

    def test_empty_probe(self):
        probe = AppTimeLatencyProbe()
        assert probe.mean == 0.0
        assert probe.percentile(0.5) == 0.0


class TestWallClock:
    def test_returns_rate_and_count(self):
        rate, count = wall_clock_throughput(lambda: sum(range(10000)) and 10000)
        assert count == 10000
        assert rate > 0
