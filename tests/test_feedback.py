"""Tests for feedback signalling and fast-forward (Section V-D)."""


from repro.engine.operator import CollectorSink
from repro.engine.query import Query
from repro.lmerge.feedback import FeedbackPolicy, FeedbackSignal
from repro.lmerge.r3 import LMergeR3
from repro.operators.select import Filter
from repro.operators.source import StreamSource
from repro.operators.udf import UdfFilter, ValueBandCost
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Insert, Stable
from repro.temporal.time import INFINITY

from conftest import divergent_inputs, small_stream


class TestFeedbackSignal:
    def test_covers(self):
        signal = FeedbackSignal(horizon=50)
        assert signal.covers(49)
        assert not signal.covers(50)

    def test_policy_threshold(self):
        policy = FeedbackPolicy(min_lag=10)
        assert policy.should_signal(output_stable=100, input_stable=85)
        assert not policy.should_signal(output_stable=100, input_stable=95)

    def test_default_policy_signals_any_lag(self):
        policy = FeedbackPolicy()
        assert policy.should_signal(100, 99)
        assert not policy.should_signal(100, 100)


class TestMergeRaisesFeedback:
    def test_lagging_inputs_receive_signal(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.attach(1)
        signals = []
        merge.add_feedback_listener(
            lambda stream_id, t: signals.append((stream_id, t))
        )
        merge.process(Stable(50), 0)
        # Stream 1 trails: it should be told to fast-forward to 50.
        assert (1, 50) in signals
        assert (0, 50) not in signals

    def test_no_listener_no_cost(self):
        merge = LMergeR3()
        merge.attach(0)
        merge.process(Stable(50), 0)  # must not raise


class TestSourceFastForward:
    def test_source_skips_covered_elements(self):
        stream = PhysicalStream(
            [Insert("old", 1, 5), Insert("live", 60, 70), Stable(INFINITY)]
        )
        source = StreamSource(stream)
        sink = CollectorSink()
        source.subscribe(sink)
        source.on_feedback(FeedbackSignal(50))
        source.play()
        payloads = [e.payload for e in sink.stream.data_elements()]
        assert payloads == ["live"]
        assert source.skipped == 1

    def test_stables_never_skipped(self):
        stream = PhysicalStream([Stable(10), Stable(INFINITY)])
        source = StreamSource(stream)
        sink = CollectorSink()
        source.subscribe(sink)
        source.on_feedback(FeedbackSignal(50))
        source.play()
        assert sink.stream.count_stables() == 2


class TestUdfFastForward:
    def test_udf_skips_covered_work(self):
        udf = UdfFilter(lambda p: True)
        sink = CollectorSink()
        udf.subscribe(sink)
        udf.on_feedback(FeedbackSignal(50))
        udf.receive(Insert("old", 1, 5), 0)
        udf.receive(Insert("live", 60, 70), 0)
        assert udf.skipped == 1
        assert udf.evaluated == 1

    def test_cost_model_respects_horizon(self):
        cost = ValueBandCost(threshold=200, below_cost=5.0, above_cost=0.1)
        udf = UdfFilter(lambda p: True, cost_model=cost)
        assert udf.cost(Insert((100, 0, ""), 1, 5)) == 5.0
        assert udf.cost(Insert((300, 0, ""), 1, 5)) == 0.1
        udf.on_feedback(FeedbackSignal(50))
        assert udf.cost(Insert((100, 0, ""), 1, 5)) == 0.0

    def test_feedback_propagates_upstream(self):
        stream = PhysicalStream([Insert("old", 1, 5), Stable(INFINITY)])
        source = StreamSource(stream)
        udf = UdfFilter(lambda p: True)
        source.subscribe(udf)
        udf.on_feedback(FeedbackSignal(50))
        sink = CollectorSink()
        udf.subscribe(sink)
        source.play()
        assert source.skipped == 1  # the signal reached the source

    def test_filter_default_propagation(self):
        """Operators without fast-forward state still forward the signal."""
        stream = PhysicalStream([Insert("old", 1, 5), Stable(INFINITY)])
        source = StreamSource(stream)
        middle = Filter(lambda p: True)
        source.subscribe(middle)
        middle.on_feedback(FeedbackSignal(50))
        source.play()
        assert source.skipped == 1


class TestEndToEndFastForward:
    def test_merged_plans_with_feedback_skip_work_and_stay_correct(self):
        reference = small_stream(count=400, seed=71, stable_freq=0.1)
        inputs = divergent_inputs(reference, n=3)
        replicas = [Query.from_stream(s) for s in inputs]
        merge = Query.merge_with(replicas, feedback=True)
        # Sequential play: replica 0 finishes first, so 1 and 2 get
        # fast-forwarded over everything replica 0 already froze.
        for replica in replicas:
            replica.play()
        assert merge.output.tdb() == reference.tdb()
        skipped = sum(r._sources()[0].skipped for r in replicas)
        assert skipped > 0

    def test_without_feedback_nothing_skipped(self):
        reference = small_stream(count=400, seed=71, stable_freq=0.1)
        inputs = divergent_inputs(reference, n=3)
        replicas = [Query.from_stream(s) for s in inputs]
        merge = Query.merge_with(replicas, feedback=False)
        for replica in replicas:
            replica.play()
        assert merge.output.tdb() == reference.tdb()
        skipped = sum(r._sources()[0].skipped for r in replicas)
        assert skipped == 0
