"""Tests for the metric registry (repro.obs.registry)."""

import json
import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
)


class TestCounter:
    def test_monotone(self):
        c = Counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(4.5)
        g.add(-1.5)
        assert g.value == 3.0

    def test_infinity_snapshot_is_json_clean(self):
        g = Gauge("g")
        g.set(-math.inf)
        assert g.snapshot_value() == "-inf"
        g.set(math.inf)
        assert g.snapshot_value() == "inf"


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for v in (5, 1, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9
        assert h.min == 1
        assert h.max == 5
        assert h.mean == pytest.approx(3.0)

    def test_ceil_nearest_rank_percentile(self):
        h = Histogram("h")
        h.observe(10)
        h.observe(20)
        # Median of a 2-sample list is the LOWER sample under ceil-based
        # nearest rank; q=1.0 is exactly the max.
        assert h.percentile(0.5) == 10
        assert h.percentile(1.0) == 20
        assert h.percentile(0.0) == 10

    def test_bounded_window(self):
        h = Histogram("h", window=4)
        for v in range(100):
            h.observe(v)
        assert h.count == 100          # exact aggregates survive
        assert h.max == 99
        assert len(h._samples) == 4    # percentile window stays bounded
        assert h.percentile(1.0) == 99  # last 4 observations retained

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", window=0)


class TestTimeSeries:
    def test_negative_buckets_survive(self):
        ts = TimeSeries("ts", bucket=1.0)
        ts.record(-2.5, 3)
        ts.record(0.5, 1)
        assert ts.series() == [(-3.0, 3), (-2.0, 0), (-1.0, 0), (0.0, 1)]
        assert ts.total == 4

    def test_gap_fill_from_minimum(self):
        ts = TimeSeries("ts", bucket=2.0)
        ts.record(4.0)
        ts.record(8.0)
        assert ts.series() == [(4.0, 1), (6.0, 0), (8.0, 1)]

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("ts", bucket=0)


class TestMetricRegistry:
    def test_get_or_create_is_stable(self):
        r = MetricRegistry()
        a = r.counter("hits", {"op": "x"})
        b = r.counter("hits", {"op": "x"})
        assert a is b
        assert r.counter("hits", {"op": "y"}) is not a
        assert len(r) == 2

    def test_label_order_normalized(self):
        r = MetricRegistry()
        a = r.gauge("g", {"a": 1, "b": 2})
        b = r.gauge("g", {"b": 2, "a": 1})
        assert a is b

    def test_kind_conflict_raises(self):
        r = MetricRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_snapshot_round_trips_through_json(self):
        r = MetricRegistry()
        r.counter("c", {"k": "v"}).inc(7)
        r.gauge("g").set(1.5)
        h = r.histogram("h")
        h.observe(3)
        r.timeseries("ts").record(-1, 2)
        snap = r.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_is_detached(self):
        r = MetricRegistry()
        c = r.counter("c")
        c.inc(1)
        snap = r.snapshot()
        c.inc(10)
        assert snap["counter"][0]["value"] == 1

    def test_reset_zeroes_but_keeps_handles(self):
        r = MetricRegistry()
        c = r.counter("c")
        g = r.gauge("g")
        ts = r.timeseries("ts")
        c.inc(5)
        g.set(2)
        ts.record(0, 9)
        r.reset()
        assert c.value == 0 and g.value == 0 and ts.series() == []
        assert r.counter("c") is c  # registration survives
        c.inc(1)
        assert r.snapshot()["counter"][0]["value"] == 1

    def test_snapshot_reset_snapshot_round_trip(self):
        """snapshot -> reset -> replay the same traffic -> same snapshot."""
        r = MetricRegistry()

        def traffic():
            r.counter("c", {"op": "a"}).inc(3)
            r.gauge("depth").set(17)
            r.timeseries("lag", {"input": 0}).record(2.0, 5)

        traffic()
        first = r.snapshot()
        r.reset()
        traffic()
        assert r.snapshot() == first

    def test_deterministic_iteration_order(self):
        r = MetricRegistry()
        r.counter("b")
        r.counter("a", {"z": 1})
        r.counter("a", {"k": 1})
        names = [(i.name, i.labels) for i in r]
        assert names == sorted(names)

    def test_get(self):
        r = MetricRegistry()
        c = r.counter("c", {"x": 1})
        assert r.get("c", {"x": 1}) is c
        assert r.get("c") is None


class TestHelpAndValidation:
    def test_invalid_name_rejected_at_registration(self):
        r = MetricRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            r.counter("bad name")
        with pytest.raises(ValueError, match="invalid metric name"):
            r.gauge("1starts_with_digit")
        r.counter("ok_name:with_colon")  # valid charset passes

    def test_help_stored_and_snapshotted(self):
        r = MetricRegistry()
        r.counter("c", help="Things counted.").inc(2)
        r.gauge("g").set(1)  # no help -> no key in snapshot
        snap = r.snapshot()
        (entry,) = snap["counter"]
        assert entry["help"] == "Things counted."
        (gauge_entry,) = snap["gauge"]
        assert "help" not in gauge_entry

    def test_help_backfilled_not_cleared(self):
        r = MetricRegistry()
        handle = r.counter("c")  # hot-path fetch, no help yet
        assert handle.help == ""
        assert r.counter("c", help="Late description.") is handle
        assert handle.help == "Late description."
        # Later helpless lookups keep it; a second help does not override.
        r.counter("c")
        r.counter("c", help="other")
        assert handle.help == "Late description."

    def test_help_on_every_factory(self):
        r = MetricRegistry()
        assert r.counter("a", help="x").help == "x"
        assert r.gauge("b", help="x").help == "x"
        assert r.histogram("c", help="x", window=8).help == "x"
        assert r.timeseries("d", help="x", bucket=2.0).help == "x"


class TestHistogramAbsorb:
    def test_absorb_merges_exact_aggregates(self):
        r = MetricRegistry()
        h = r.histogram("lat")
        h.observe(1.0)
        h.absorb(count=3, total=9.0, samples=[2.0, 3.0, 4.0])
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0 and h.max == 4.0

    def test_absorb_uses_shipped_extrema_over_samples(self):
        h = MetricRegistry().histogram("lat")
        # Shipper observed 100 values but only ships a 2-sample tail;
        # its exact extrema must still land here.
        h.absorb(
            count=100, total=500.0, samples=[5.0, 5.0],
            min_value=0.25, max_value=50.0,
        )
        assert h.min == 0.25 and h.max == 50.0
        assert h.count == 100

    def test_absorb_zero_count_is_noop(self):
        h = MetricRegistry().histogram("lat")
        h.absorb(count=0, total=0.0, samples=[])
        assert h.count == 0
        assert h.snapshot_value()["min"] is None

    def test_absorb_respects_sample_window(self):
        h = MetricRegistry().histogram("lat", window=4)
        h.absorb(count=10, total=55.0, samples=list(range(10)))
        assert len(h._samples) == 4
        assert h.count == 10  # exact count independent of window
