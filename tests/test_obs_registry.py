"""Tests for the metric registry (repro.obs.registry)."""

import json
import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
)


class TestCounter:
    def test_monotone(self):
        c = Counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(4.5)
        g.add(-1.5)
        assert g.value == 3.0

    def test_infinity_snapshot_is_json_clean(self):
        g = Gauge("g")
        g.set(-math.inf)
        assert g.snapshot_value() == "-inf"
        g.set(math.inf)
        assert g.snapshot_value() == "inf"


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for v in (5, 1, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9
        assert h.min == 1
        assert h.max == 5
        assert h.mean == pytest.approx(3.0)

    def test_ceil_nearest_rank_percentile(self):
        h = Histogram("h")
        h.observe(10)
        h.observe(20)
        # Median of a 2-sample list is the LOWER sample under ceil-based
        # nearest rank; q=1.0 is exactly the max.
        assert h.percentile(0.5) == 10
        assert h.percentile(1.0) == 20
        assert h.percentile(0.0) == 10

    def test_bounded_window(self):
        h = Histogram("h", window=4)
        for v in range(100):
            h.observe(v)
        assert h.count == 100          # exact aggregates survive
        assert h.max == 99
        assert len(h._samples) == 4    # percentile window stays bounded
        assert h.percentile(1.0) == 99  # last 4 observations retained

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", window=0)


class TestTimeSeries:
    def test_negative_buckets_survive(self):
        ts = TimeSeries("ts", bucket=1.0)
        ts.record(-2.5, 3)
        ts.record(0.5, 1)
        assert ts.series() == [(-3.0, 3), (-2.0, 0), (-1.0, 0), (0.0, 1)]
        assert ts.total == 4

    def test_gap_fill_from_minimum(self):
        ts = TimeSeries("ts", bucket=2.0)
        ts.record(4.0)
        ts.record(8.0)
        assert ts.series() == [(4.0, 1), (6.0, 0), (8.0, 1)]

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("ts", bucket=0)


class TestMetricRegistry:
    def test_get_or_create_is_stable(self):
        r = MetricRegistry()
        a = r.counter("hits", {"op": "x"})
        b = r.counter("hits", {"op": "x"})
        assert a is b
        assert r.counter("hits", {"op": "y"}) is not a
        assert len(r) == 2

    def test_label_order_normalized(self):
        r = MetricRegistry()
        a = r.gauge("g", {"a": 1, "b": 2})
        b = r.gauge("g", {"b": 2, "a": 1})
        assert a is b

    def test_kind_conflict_raises(self):
        r = MetricRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_snapshot_round_trips_through_json(self):
        r = MetricRegistry()
        r.counter("c", {"k": "v"}).inc(7)
        r.gauge("g").set(1.5)
        h = r.histogram("h")
        h.observe(3)
        r.timeseries("ts").record(-1, 2)
        snap = r.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_is_detached(self):
        r = MetricRegistry()
        c = r.counter("c")
        c.inc(1)
        snap = r.snapshot()
        c.inc(10)
        assert snap["counter"][0]["value"] == 1

    def test_reset_zeroes_but_keeps_handles(self):
        r = MetricRegistry()
        c = r.counter("c")
        g = r.gauge("g")
        ts = r.timeseries("ts")
        c.inc(5)
        g.set(2)
        ts.record(0, 9)
        r.reset()
        assert c.value == 0 and g.value == 0 and ts.series() == []
        assert r.counter("c") is c  # registration survives
        c.inc(1)
        assert r.snapshot()["counter"][0]["value"] == 1

    def test_snapshot_reset_snapshot_round_trip(self):
        """snapshot -> reset -> replay the same traffic -> same snapshot."""
        r = MetricRegistry()

        def traffic():
            r.counter("c", {"op": "a"}).inc(3)
            r.gauge("depth").set(17)
            r.timeseries("lag", {"input": 0}).record(2.0, 5)

        traffic()
        first = r.snapshot()
        r.reset()
        traffic()
        assert r.snapshot() == first

    def test_deterministic_iteration_order(self):
        r = MetricRegistry()
        r.counter("b")
        r.counter("a", {"z": 1})
        r.counter("a", {"k": 1})
        names = [(i.name, i.labels) for i in r]
        assert names == sorted(names)

    def test_get(self):
        r = MetricRegistry()
        c = r.counter("c", {"x": 1})
        assert r.get("c", {"x": 1}) is c
        assert r.get("c") is None
