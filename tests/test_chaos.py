"""The chaos matrix: property tests killing workers at random batch
boundaries, plus the seeded matrix smoke used by CI.

The oracle in every cell is the repro/theory TDB-equivalence check
(``tdb(faulty) == tdb(clean) == tdb(reference)``) plus multiset equality
of the data elements — no loss, no duplication.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.chaos import run_chaos_cell, run_fault_matrix


class TestRandomKillBoundaries:
    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        variant=st.sampled_from(["r1", "r3"]),
    )
    def test_kills_at_random_batch_boundaries_preserve_equivalence(
        self, seed, variant
    ):
        cell = run_chaos_cell(variant, "kill", seed, count=120)
        assert cell["equivalent"], cell
        assert cell["no_loss_no_duplication"], cell

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_r4_survives_kills(self, seed):
        cell = run_chaos_cell("r4", "kill", seed, count=120)
        assert cell["ok"], cell


class TestFaultKinds:
    def test_duplicate_frames_are_absorbed_without_restart(self):
        cell = run_chaos_cell("r3", "duplicate", 21, count=120)
        assert cell["ok"], cell
        assert cell["restarts"] == 0  # the sequence gate eats duplicates

    def test_drop_triggers_gap_recovery(self):
        cell = run_chaos_cell("r3", "drop", 21, count=120)
        assert cell["ok"], cell
        assert cell["restarts"] >= 1

    def test_delay_triggers_reorder_recovery(self):
        cell = run_chaos_cell("r3", "delay", 21, count=120)
        assert cell["ok"], cell


class TestMatrix:
    def test_seeded_matrix_is_reproducible_and_ok(self, tmp_path):
        report = run_fault_matrix(
            5,
            variants=("r3",),
            fault_kinds=("kill", "duplicate"),
            count=120,
        )
        assert report["all_ok"], report
        assert len(report["cells"]) == 2
        # Same seed, same fault plan: the injected sites are data, so a
        # rerun injects exactly the same faults.
        again = run_fault_matrix(
            5,
            variants=("r3",),
            fault_kinds=("kill", "duplicate"),
            count=120,
        )
        assert [c["fault_plan"] for c in again["cells"]] == [
            c["fault_plan"] for c in report["cells"]
        ]
        # The report is the CI artifact: it must be JSON-serializable.
        blob = json.dumps(report, sort_keys=True)
        assert "fault_plan" in blob


class TestChaosCli:
    def test_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "chaos-report.json"
        code = main(
            [
                "chaos",
                "--seed",
                "13",
                "--variants",
                "r3",
                "--faults",
                "kill",
                "--count",
                "120",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["all_ok"]
        assert report["cells"][0]["fault"] == "kill"
        printed = capsys.readouterr().out
        assert "chaos matrix" in printed

    def test_cli_rejects_unknown_fault(self):
        from repro.__main__ import main

        assert main(["chaos", "--faults", "meteor"]) == 2
