"""Punctuation-monotonicity pass: proofs, refusals, and plan wiring."""

import textwrap

import pytest

from repro.analysis.propflow import (
    UnsoundPlanError,
    check_plan,
    verify_plan,
)
from repro.analysis.punct import (
    PUNCT_PROVED,
    PUNCT_UNKNOWN,
    PUNCT_VIOLATED,
    SITE_GUARDED,
    SITE_PASS_THROUGH,
    classify_source,
    punctuation_of,
)
from repro.engine.operator import Operator
from repro.operators.aggregate import GroupedCount, WindowedCount
from repro.operators.cleanse import Cleanse
from repro.operators.exchange import HashPartition, ShardUnion
from repro.operators.join import TemporalJoin
from repro.operators.select import Filter
from repro.operators.union import Union
from repro.temporal.elements import Stable


def _classify(source):
    return classify_source(textwrap.dedent(source))


class TestSiteClassification:
    def test_pass_through_parameter(self):
        result = _classify(
            """
            class Forward:
                def on_stable(self, vc, port):
                    self.emit(Stable(vc))
            """
        )["Forward"]
        assert result.verdict == PUNCT_PROVED
        assert result.sites[0].classification == SITE_PASS_THROUGH

    def test_guarded_high_water_mark(self):
        result = _classify(
            """
            class Guarded:
                def on_stable(self, vc, port):
                    frontier = min(self._frontiers)
                    if frontier > self._emitted_stable:
                        self._emitted_stable = frontier
                        self.emit(Stable(frontier))
            """
        )["Guarded"]
        assert result.verdict == PUNCT_PROVED
        assert result.sites[0].classification == SITE_GUARDED

    def test_mirrored_guard_also_proves(self):
        result = _classify(
            """
            class Mirrored:
                def on_stable(self, vc, port):
                    if self._mark < vc:
                        self._mark = vc
                        self.emit(Stable(vc))
            """
        )["Mirrored"]
        assert result.verdict == PUNCT_PROVED

    def test_guard_without_watermark_update_is_unknown(self):
        result = _classify(
            """
            class Leaky:
                def on_stable(self, vc, port):
                    frontier = self._frontier()
                    if frontier > self._emitted_stable:
                        self.emit(Stable(frontier))
            """
        )["Leaky"]
        assert result.verdict == PUNCT_UNKNOWN

    def test_emission_below_parameter_is_violated(self):
        result = _classify(
            """
            class Regress:
                def on_stable(self, vc, port):
                    self.emit(Stable(vc - 1))
            """
        )["Regress"]
        assert result.verdict == PUNCT_VIOLATED

    def test_computed_unguarded_is_unknown_not_violated(self):
        result = _classify(
            """
            class Computed:
                def on_stable(self, vc, port):
                    self.emit(Stable(self._watermark()))
            """
        )["Computed"]
        assert result.verdict == PUNCT_UNKNOWN

    def test_else_branch_not_covered_by_guard(self):
        result = _classify(
            """
            class ElseEmit:
                def on_stable(self, vc, port):
                    frontier = min(self._frontiers)
                    if frontier > self._emitted_stable:
                        self._emitted_stable = frontier
                    else:
                        self.emit(Stable(frontier))
            """
        )["ElseEmit"]
        assert result.verdict == PUNCT_UNKNOWN

    def test_no_sites_is_trivially_proved(self):
        result = _classify(
            """
            class DataOnly:
                def on_insert(self, element, port):
                    self.emit(element)
            """
        )["DataOnly"]
        assert result.verdict == PUNCT_PROVED
        assert result.sites == []


class TestRealOperators:
    @pytest.mark.parametrize(
        "cls",
        [
            Union,
            Filter,
            Cleanse,
            TemporalJoin,
            WindowedCount,
            GroupedCount,
            HashPartition,
            ShardUnion,
        ],
    )
    def test_shipped_operator_proves_monotone(self, cls):
        result = punctuation_of(cls)
        assert result.verdict == PUNCT_PROVED, result.to_json()

    def test_inherited_helper_counts_via_mro(self):
        # WindowedCount itself never constructs a Stable — the guarded
        # site lives in the _WindowedOperator base's _emit_stable.
        result = punctuation_of(WindowedCount)
        assert any(
            site.class_name == "_WindowedOperator" for site in result.sites
        )

    def test_result_is_cached_per_class(self):
        assert punctuation_of(Union) is punctuation_of(Union)


class _RegressingStable(Operator):
    """Fixture: re-opens time it already promised closed."""

    def on_insert(self, element, port):
        self.emit(element)

    def on_stable(self, vc, port):
        self.emit(Stable(vc - 1))


class TestPlanWiring:
    def test_check_plan_carries_punctuation_verdicts(self):
        op = Filter(lambda p: True, name="keep")
        check = check_plan(op, plan="tiny")
        by_class = {entry.class_name: entry for entry in check.punctuation}
        assert by_class["Filter"].verdict == PUNCT_PROVED
        assert by_class["Filter"].operators == ["keep"]
        assert check.ok

    def test_punctuation_in_json_and_render(self):
        op = Filter(lambda p: True, name="keep")
        check = check_plan(op, plan="tiny")
        payload = check.to_json()
        assert payload["punctuation"]
        assert payload["punctuation"][0]["verdict"] == PUNCT_PROVED
        assert "punctuation" in check.render()

    def test_violating_operator_fails_the_plan(self):
        bad = _RegressingStable(name="regress")
        check = check_plan(bad, plan="broken")
        assert not check.ok
        assert check.punctuation_violations
        assert "violated" in check.render()

    def test_verify_plan_raises_on_violation(self):
        bad = _RegressingStable(name="regress")
        with pytest.raises(UnsoundPlanError) as excinfo:
            verify_plan(bad, plan="broken")
        assert "punctuation" in str(excinfo.value)

    def test_unknown_does_not_fail_the_plan(self):
        # The pass is conservative: unproven-but-unrefuted operators are
        # reported, not rejected.
        entries = check_plan(
            Filter(lambda p: True, name="keep"), plan="tiny"
        ).punctuation
        assert all(entry.ok for entry in entries)
