"""Tier-1 smoke test: the disabled-observability budget.

The tracing hook points guard all their work behind ``tracer.enabled``
(one attribute load + branch per *call*).  This test times the shipped
``process_batch`` (NullTracer guard in place) against a local replica of
the pre-instrumentation inner loop — identical run-grouping and dispatch,
no guard — and asserts the shipped path stays within the 5% budget.

The distributed-telemetry arm applies the same discipline to the shm
exchange: the shipped ``_shm_shard_loop`` (telemetry branches compiled
in, disabled by ``telemetry_interval=0``) is timed against a replica of
the pre-telemetry worker loop, end to end through real process workers;
and a TELEM-enabled run must leave the merged output element-identical.

Timing assertions are meaningless on a loaded single-core host (the noise
floor exceeds the budget), so the perf assertions are skipped there —
matching the repo's precedent for core-gated perf claims.  The
correctness halves (replica output identity, TELEM-on equivalence) run
everywhere.
"""

import multiprocessing
import pickle
import sys
import time
import traceback

import pytest

from repro.engine import shm as shm_rings
from repro.engine import parallel
from repro.engine.columnar import ColumnBatch
from repro.engine.shm import RingClosedError
from repro.engine.parallel import available_cores
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.base import interleave_batches
from repro.lmerge.shard import shard
from repro.obs.registry import MetricRegistry
from repro.obs.trace import NULL_TRACER
from repro.temporal.elements import Stable

from conftest import divergent_inputs, small_stream

BUDGET = 0.95  # shipped throughput must stay >= 95% of the replica's
REPS = 5


def untraced_process_batch(merge, elements, stream_id):
    """The pre-instrumentation inner loop: run-grouping + type-keyed
    dispatch, no tracer guard.  Must mirror LMergeBase.process_batch."""
    state = merge._inputs[stream_id]
    dispatch = merge._batch_dispatch
    i = 0
    n = len(elements)
    while i < n:
        cls = elements[i].__class__
        j = i + 1
        while j < n and elements[j].__class__ is cls:
            j += 1
        dispatch[cls](elements[i : j], stream_id, state, False)
        i = j


def _chunks(streams, batch_size=64):
    return list(interleave_batches(streams, "round_robin", 0, batch_size))


def _run(streams, chunks, use_replica):
    merge = LMergeR3()
    for stream_id in range(len(streams)):
        merge.attach(stream_id)
    start = time.perf_counter()
    if use_replica:
        for chunk, stream_id in chunks:
            untraced_process_batch(merge, chunk, stream_id)
    else:
        for chunk, stream_id in chunks:
            merge.process_batch(chunk, stream_id)
    return time.perf_counter() - start, merge


def test_replica_matches_shipped_output():
    """The baseline loop used for timing is semantically the shipped
    path — otherwise the overhead comparison measures nothing."""
    streams = divergent_inputs(small_stream(count=300, blob=2), n=2)
    chunks = _chunks(streams)
    _, shipped = _run(streams, chunks, use_replica=False)
    _, replica = _run(streams, chunks, use_replica=True)
    assert list(shipped.output) == list(replica.output)
    assert shipped.stats.inserts_out == replica.stats.inserts_out


@pytest.mark.skipif(
    available_cores() < 2,
    reason="timing budget needs an unloaded core; host has <2",
)
def test_nulltracer_overhead_within_budget():
    streams = divergent_inputs(small_stream(count=2000, blob=2), n=2)
    chunks = _chunks(streams)
    merge = LMergeR3()
    assert merge.tracer is NULL_TRACER  # the default must be the null tracer

    best_shipped = min(
        _run(streams, chunks, use_replica=False)[0] for _ in range(REPS)
    )
    best_replica = min(
        _run(streams, chunks, use_replica=True)[0] for _ in range(REPS)
    )
    slowdown = best_shipped / best_replica
    assert slowdown <= 1 / BUDGET, (
        f"disabled tracing costs {slowdown - 1:.1%} on the hot path "
        f"(budget 5%): shipped {best_shipped:.4f}s vs "
        f"replica {best_replica:.4f}s"
    )


# ---------------------------------------------------------------------------
# Distributed-telemetry arm: the shm-exchange worker loop
# ---------------------------------------------------------------------------


def legacy_shm_shard_loop(
    shard_id,
    factory,
    in_ring,
    out_ring,
    coalesce_stables,
    telemetry_interval=0.0,  # accepted (spawn passes it), never read
):
    """The pre-telemetry shm worker loop (PR 6 shape): no emitter, no
    observer, no trace-id lineage.  Must mirror what _shm_shard_loop
    does when telemetry is disabled, minus the disabled branches."""
    try:
        in_ring.child_deregister()
        out_ring.child_deregister()
        parent = multiprocessing.parent_process()
        if parent is not None:
            in_ring.set_liveness(parent.is_alive)
            out_ring.set_liveness(parent.is_alive)
        buffer = []
        merge = factory(buffer.append)
        while True:
            frame = in_ring.get()
            kind, payload = frame
            if kind == shm_rings.BATCH:
                sid_len = int.from_bytes(payload[:2], "little")
                stream_id = pickle.loads(payload[2 : 2 + sid_len])
                batch = ColumnBatch.decode(memoryview(payload)[2 + sid_len :])
                merge.process_columns(
                    batch, stream_id, coalesce_stables=coalesce_stables
                )
                if buffer:
                    out = ColumnBatch.from_elements(buffer[:])
                    buffer.clear()
                    size, prebuilt = out.encoded_size()
                    out_ring.put_frame(
                        shm_rings.OUT,
                        size,
                        lambda view: out.encode_into(view, prebuilt),
                    )
            elif kind == shm_rings.CTRL:
                message = pickle.loads(payload)
                if message is None:
                    out_ring.put_pickle(shm_rings.DONE, merge.stats)
                    return
                if message[0] == "attach":
                    merge.attach(message[1], message[2])
                elif message[0] == "detach":
                    merge.detach(message[1])
    except RingClosedError:  # pragma: no cover - driver aborted first
        pass
    except BaseException:  # pragma: no cover - surfaced via ERR frame
        details = traceback.format_exc()
        try:
            out_ring.put_pickle(shm_rings.ERR, details, timeout=5.0)
        except Exception:
            sys.stderr.write(f"[legacy shm shard {shard_id}] {details}\n")


def _sharded_inputs(count=1200):
    reference = small_stream(count=count, seed=21, disorder=0.3, blob=2)
    return reference, divergent_inputs(reference, n=2)


def _run_sharded(inputs, telemetry_interval=0.0, registry=None):
    plan = shard(
        LMergeR3,
        2,
        backend="process",
        registry=registry,
        telemetry_interval=telemetry_interval,
    )
    start = time.perf_counter()
    output = plan.merge(inputs, schedule="round_robin")
    return time.perf_counter() - start, output


def _data_by_key(elements):
    ordered = {}
    for element in elements:
        if isinstance(element, Stable):
            continue
        ordered.setdefault((element.vs, element.payload), []).append(element)
    return ordered


def test_shm_replica_matches_shipped_output(monkeypatch):
    """The legacy worker loop is semantically the shipped disabled path —
    otherwise the process-backend overhead comparison measures nothing."""
    _, inputs = _sharded_inputs(count=400)
    _, shipped = _run_sharded(inputs)
    monkeypatch.setattr(parallel, "_shm_shard_loop", legacy_shm_shard_loop)
    _, replica = _run_sharded(inputs)
    assert _data_by_key(shipped) == _data_by_key(replica)
    assert shipped.tdb() == replica.tdb()


def test_telemetry_enabled_output_equivalent():
    """TELEM streaming is observation only: an enabled run's merged
    output carries the same per-key element sequences and TDB."""
    reference, inputs = _sharded_inputs(count=400)
    _, disabled = _run_sharded(inputs)
    _, enabled = _run_sharded(
        inputs, telemetry_interval=0.001, registry=MetricRegistry()
    )
    assert _data_by_key(enabled) == _data_by_key(disabled)
    assert enabled.tdb() == disabled.tdb() == reference.tdb()


@pytest.mark.skipif(
    available_cores() < 2,
    reason="timing budget needs an unloaded core; host has <2",
)
def test_disabled_telemetry_overhead_within_budget(monkeypatch):
    """The telemetry-disabled sharded path (guards compiled in, interval
    0) must stay within the 5% budget of the pre-telemetry worker loop,
    measured end to end through real process workers."""
    _, inputs = _sharded_inputs()

    best_shipped = min(_run_sharded(inputs)[0] for _ in range(REPS))
    monkeypatch.setattr(parallel, "_shm_shard_loop", legacy_shm_shard_loop)
    best_replica = min(_run_sharded(inputs)[0] for _ in range(REPS))

    slowdown = best_shipped / best_replica
    assert slowdown <= 1 / BUDGET, (
        f"disabled telemetry costs {slowdown - 1:.1%} on the shm exchange "
        f"(budget 5%): shipped {best_shipped:.4f}s vs "
        f"replica {best_replica:.4f}s"
    )
