"""Tier-1 smoke test: the disabled-observability budget.

The tracing hook points guard all their work behind ``tracer.enabled``
(one attribute load + branch per *call*).  This test times the shipped
``process_batch`` (NullTracer guard in place) against a local replica of
the pre-instrumentation inner loop — identical run-grouping and dispatch,
no guard — and asserts the shipped path stays within the 5% budget.

Timing assertions are meaningless on a loaded single-core host (the noise
floor exceeds the budget), so the perf assertion is skipped there —
matching the repo's precedent for core-gated perf claims.  The
correctness half (the replica and the shipped path produce identical
output) runs everywhere.
"""

import time

import pytest

from repro.engine.parallel import available_cores
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.base import interleave_batches
from repro.obs.trace import NULL_TRACER

from conftest import divergent_inputs, small_stream

BUDGET = 0.95  # shipped throughput must stay >= 95% of the replica's
REPS = 5


def untraced_process_batch(merge, elements, stream_id):
    """The pre-instrumentation inner loop: run-grouping + type-keyed
    dispatch, no tracer guard.  Must mirror LMergeBase.process_batch."""
    state = merge._inputs[stream_id]
    dispatch = merge._batch_dispatch
    i = 0
    n = len(elements)
    while i < n:
        cls = elements[i].__class__
        j = i + 1
        while j < n and elements[j].__class__ is cls:
            j += 1
        dispatch[cls](elements[i : j], stream_id, state, False)
        i = j


def _chunks(streams, batch_size=64):
    return list(interleave_batches(streams, "round_robin", 0, batch_size))


def _run(streams, chunks, use_replica):
    merge = LMergeR3()
    for stream_id in range(len(streams)):
        merge.attach(stream_id)
    start = time.perf_counter()
    if use_replica:
        for chunk, stream_id in chunks:
            untraced_process_batch(merge, chunk, stream_id)
    else:
        for chunk, stream_id in chunks:
            merge.process_batch(chunk, stream_id)
    return time.perf_counter() - start, merge


def test_replica_matches_shipped_output():
    """The baseline loop used for timing is semantically the shipped
    path — otherwise the overhead comparison measures nothing."""
    streams = divergent_inputs(small_stream(count=300, blob=2), n=2)
    chunks = _chunks(streams)
    _, shipped = _run(streams, chunks, use_replica=False)
    _, replica = _run(streams, chunks, use_replica=True)
    assert list(shipped.output) == list(replica.output)
    assert shipped.stats.inserts_out == replica.stats.inserts_out


@pytest.mark.skipif(
    available_cores() < 2,
    reason="timing budget needs an unloaded core; host has <2",
)
def test_nulltracer_overhead_within_budget():
    streams = divergent_inputs(small_stream(count=2000, blob=2), n=2)
    chunks = _chunks(streams)
    merge = LMergeR3()
    assert merge.tracer is NULL_TRACER  # the default must be the null tracer

    best_shipped = min(
        _run(streams, chunks, use_replica=False)[0] for _ in range(REPS)
    )
    best_replica = min(
        _run(streams, chunks, use_replica=True)[0] for _ in range(REPS)
    )
    slowdown = best_shipped / best_replica
    assert slowdown <= 1 / BUDGET, (
        f"disabled tracing costs {slowdown - 1:.1%} on the hot path "
        f"(budget 5%): shipped {best_shipped:.4f}s vs "
        f"replica {best_replica:.4f}s"
    )
