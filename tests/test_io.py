"""Stream serialization (JSON lines) and the command-line interface."""

import io

import pytest

from repro.streams.io import (
    dump_stream,
    element_from_dict,
    element_to_dict,
    load_stream,
    read_stream,
    save_stream,
)
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import INFINITY

from conftest import small_stream


class TestElementCodec:
    def test_insert_round_trip(self):
        element = Insert(("a", 1), 5, 10)
        assert element_from_dict(element_to_dict(element)) == element

    def test_adjust_round_trip(self):
        element = Adjust("a", 5, 10, 12)
        assert element_from_dict(element_to_dict(element)) == element

    def test_stable_round_trip(self):
        assert element_from_dict(element_to_dict(Stable(7))) == Stable(7)

    def test_infinity_round_trip(self):
        element = Insert("a", 5, INFINITY)
        encoded = element_to_dict(element)
        assert encoded["ve"] == "inf"
        assert element_from_dict(encoded) == element

    def test_nested_tuple_payload(self):
        element = Insert((("x", 1), 2.5, None), 5, 10)
        assert element_from_dict(element_to_dict(element)) == element

    def test_unserializable_payload_rejected(self):
        with pytest.raises(TypeError):
            element_to_dict(Insert(object(), 1, 2))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            element_from_dict({"t": "mystery"})


class TestStreamFiles:
    def test_round_trip_in_memory(self):
        stream = small_stream(count=200, seed=130, blob=8)
        buffer = io.StringIO()
        written = dump_stream(stream, buffer)
        assert written == len(stream)
        buffer.seek(0)
        loaded = load_stream(buffer)
        assert list(loaded) == list(stream)

    def test_round_trip_on_disk(self, tmp_path):
        stream = small_stream(count=100, seed=131, blob=8)
        path = tmp_path / "stream.jsonl"
        save_stream(stream, path)
        loaded = read_stream(path)
        assert loaded.tdb() == stream.tdb()

    def test_blank_lines_skipped(self):
        loaded = load_stream(io.StringIO('\n{"t":"stable","vc":5}\n\n'))
        assert list(loaded) == [Stable(5)]

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            load_stream(io.StringIO('{"t":"stable","vc":5}\n{"nope":1}\n'))


class TestCli:
    def run_cli(self, *argv):
        from repro.__main__ import main

        return main(list(argv))

    def test_generate_and_inspect(self, tmp_path, capsys):
        path = tmp_path / "w.jsonl"
        assert self.run_cli(
            "generate", str(path), "--count", "500", "--payload-bytes", "4"
        ) == 0
        assert self.run_cli("inspect", str(path)) == 0
        out = capsys.readouterr().out
        assert "restriction class" in out

    def test_full_pipeline(self, tmp_path, capsys):
        base = tmp_path / "a.jsonl"
        variant = tmp_path / "b.jsonl"
        merged = tmp_path / "m.jsonl"
        self.run_cli("generate", str(base), "--count", "400",
                     "--payload-bytes", "4", "--seed", "7")
        self.run_cli("diverge", str(base), str(variant), "--seed", "1")
        assert self.run_cli(
            "merge", str(base), str(variant), "-o", str(merged)
        ) == 0
        assert self.run_cli("validate", str(merged)) == 0
        # The merged file reconstitutes to the base file's TDB.
        assert read_stream(merged).tdb() == read_stream(base).tdb()

    def test_merge_with_forced_algorithm(self, tmp_path):
        base = tmp_path / "a.jsonl"
        merged = tmp_path / "m.jsonl"
        self.run_cli("generate", str(base), "--count", "300",
                     "--payload-bytes", "4", "--disorder", "0.3")
        assert self.run_cli(
            "merge", str(base), str(base), "-o", str(merged),
            "--algorithm", "r3",
        ) == 0
        assert read_stream(merged).tdb() == read_stream(base).tdb()

    def test_validate_rejects_corrupt_stream(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        bad = PhysicalStream(
            [Insert("a", 1, 5), Stable(10), Insert("b", 2, 20)]
        )
        save_stream(bad, path)
        assert self.run_cli("validate", str(path)) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_inspect_flags_invalid_stream(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_stream(
            PhysicalStream([Insert("a", 1, 5), Stable(10), Insert("b", 2, 20)]),
            path,
        )
        assert self.run_cli("inspect", str(path)) == 1
