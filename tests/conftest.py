"""Shared fixtures and oracle helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence

import pytest

from repro.lmerge.base import LMergeBase, interleave
from repro.streams.divergence import diverge
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Stable
from repro.temporal.tdb import TDB
from repro.theory.compatibility import (
    check_r3_compatibility,
    check_r4_conformance,
)


def small_stream(
    count: int = 400,
    seed: int = 0,
    disorder: float = 0.2,
    stable_freq: float = 0.05,
    event_duration: int = 100,
    blob: int = 4,
    min_gap: int = 0,
) -> PhysicalStream:
    """A small generated stream for fast tests."""
    config = GeneratorConfig(
        count=count,
        seed=seed,
        disorder=disorder,
        stable_freq=stable_freq,
        event_duration=event_duration,
        payload_blob_bytes=blob,
        min_gap=min_gap,
    )
    return StreamGenerator(config).generate()


def divergent_inputs(
    reference: PhysicalStream,
    n: int = 3,
    speculate_fraction: float = 0.3,
    stable_keep_probability: float = 1.0,
) -> List[PhysicalStream]:
    """n physically different, logically equivalent presentations."""
    return [
        diverge(
            reference,
            seed=i,
            speculate_fraction=speculate_fraction,
            stable_keep_probability=stable_keep_probability,
        )
        for i in range(n)
    ]


def merge_with_oracle(
    merge: LMergeBase,
    inputs: Sequence[PhysicalStream],
    schedule: str = "round_robin",
    seed: int = 0,
    check_r3: bool = True,
    check_r4: bool = False,
    check_every: int = 1,
) -> LMergeBase:
    """Drive *merge* while asserting the Section III-D oracle throughout.

    After each element the output prefix is reconstituted strictly (so any
    output-stream contract violation raises) and, every *check_every*
    steps, checked against the R3 compatibility conditions C1-C3 and/or
    the R4 conformance rule.
    """
    streams = list(inputs)
    for stream_id in range(len(streams)):
        if not merge.is_attached(stream_id):
            merge.attach(stream_id)
    input_tdbs = [TDB() for _ in streams]
    output_tdb = TDB()  # strict: raises on any output contract violation
    cursor = 0
    step = 0
    for element, stream_id in interleave(streams, schedule, seed):
        merge.process(element, stream_id)
        input_tdbs[stream_id].apply(element)
        while cursor < len(merge.output):
            output_tdb.apply(merge.output[cursor])
            cursor += 1
        step += 1
        if step % check_every:
            continue
        if check_r3:
            violations = check_r3_compatibility(input_tdbs, output_tdb)
            assert not violations, "; ".join(str(v) for v in violations)
        if check_r4 and isinstance(element, Stable):
            violations = check_r4_conformance(input_tdbs, output_tdb)
            assert not violations, "; ".join(str(v) for v in violations)
    return merge


def assert_merge_equivalent(
    merge: LMergeBase,
    inputs: Sequence[PhysicalStream],
    reference_tdb: Optional[TDB] = None,
    schedule: str = "round_robin",
    seed: int = 0,
) -> LMergeBase:
    """Merge *inputs* and assert logical equivalence with the reference."""
    output = merge.merge(inputs, schedule=schedule, seed=seed)
    expected = reference_tdb if reference_tdb is not None else inputs[0].tdb()
    assert output.tdb() == expected
    return merge


@pytest.fixture
def reference_stream() -> PhysicalStream:
    return small_stream()


@pytest.fixture
def keyed_inputs(reference_stream) -> List[PhysicalStream]:
    return divergent_inputs(reference_stream)
