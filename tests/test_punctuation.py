"""Watermarks, heartbeats, and stable-stripping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.punctuation import (
    WatermarkTracker,
    strip_stables,
    with_heartbeats,
)
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import INFINITY, MINUS_INFINITY


class TestWatermarkTracker:
    def test_initial_state(self):
        tracker = WatermarkTracker(max_delay=10)
        assert tracker.frontier == MINUS_INFINITY
        assert tracker.watermark() == MINUS_INFINITY
        assert tracker.safe_stable() is None

    def test_watermark_trails_frontier(self):
        tracker = WatermarkTracker(max_delay=10)
        tracker.observe(Insert("a", 100))
        assert tracker.frontier == 100
        assert tracker.watermark() == 90
        assert tracker.safe_stable() == Stable(90)

    def test_frontier_monotone(self):
        tracker = WatermarkTracker(max_delay=10)
        tracker.observe(Insert("a", 100))
        tracker.observe(Insert("b", 50))  # disordered element
        assert tracker.frontier == 100

    def test_adjust_moves_frontier(self):
        tracker = WatermarkTracker(max_delay=0)
        tracker.observe(Adjust("a", 70, 80, 90))
        assert tracker.frontier == 70

    def test_stable_ignored(self):
        tracker = WatermarkTracker(max_delay=0)
        tracker.observe(Stable(500))
        assert tracker.frontier == MINUS_INFINITY

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            WatermarkTracker(max_delay=-1)


class TestHeartbeats:
    def make_disordered(self, seed=0):
        config = GeneratorConfig(
            count=400,
            seed=seed,
            disorder=0.3,
            disorder_window=50,
            stable_freq=0.0,
            payload_blob_bytes=4,
        )
        return StreamGenerator(config).generate()

    def test_heartbeats_added_and_valid(self):
        stream = self.make_disordered()
        pulsed = with_heartbeats(stream, max_delay=50, every=20)
        assert pulsed.count_stables() > 5
        pulsed.tdb()  # strict: every heartbeat honours the element order

    def test_preserves_logical_stream(self):
        stream = self.make_disordered()
        pulsed = with_heartbeats(stream, max_delay=50, every=20)
        assert pulsed.tdb() == stream.tdb()

    def test_understated_delay_detected(self):
        """Claiming a tighter disorder bound than the data honours fails
        fast instead of emitting corrupt punctuation."""
        stream = self.make_disordered()
        with pytest.raises(ValueError):
            with_heartbeats(stream, max_delay=1, every=5)

    def test_final_infinity_optional(self):
        stream = self.make_disordered()
        pulsed = with_heartbeats(
            stream, max_delay=50, every=20, final_infinity=False
        )
        assert pulsed.max_stable() != INFINITY

    def test_every_validation(self):
        with pytest.raises(ValueError):
            with_heartbeats(PhysicalStream(), max_delay=1, every=0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        every=st.integers(5, 60),
        slack=st.integers(0, 100),
    )
    def test_heartbeats_always_valid(self, seed, every, slack):
        """Property: for any cadence and any slack beyond the generator's
        true disorder window, the pulsed stream is valid and equivalent."""
        config = GeneratorConfig(
            count=150,
            seed=seed,
            disorder=0.4,
            disorder_window=40,
            stable_freq=0.0,
            payload_blob_bytes=2,
        )
        stream = StreamGenerator(config).generate()
        pulsed = with_heartbeats(stream, max_delay=40 + slack, every=every)
        assert pulsed.tdb() == stream.tdb()


class TestStripStables:
    def test_strips_punctuation(self):
        stream = PhysicalStream(
            [Insert("a", 1, 5), Stable(3), Insert("b", 4, 9), Stable(INFINITY)]
        )
        stripped = strip_stables(stream, keep_final_infinity=False)
        assert stripped.count_stables() == 0

    def test_keeps_final_infinity(self):
        stream = PhysicalStream(
            [Insert("a", 1, 5), Stable(3), Stable(INFINITY)]
        )
        stripped = strip_stables(stream)
        assert list(stripped) == [Insert("a", 1, 5), Stable(INFINITY)]

    def test_heartbeat_cadence_divergence_merges(self):
        """Streams re-punctuated at different cadences are still mutually
        consistent inputs for LMerge."""
        from repro.lmerge.r3 import LMergeR3

        config = GeneratorConfig(
            count=400, seed=7, disorder=0.3, disorder_window=50,
            stable_freq=0.0, payload_blob_bytes=4,
        )
        stream = StreamGenerator(config).generate()
        inputs = [
            with_heartbeats(stream, max_delay=60, every=cadence)
            for cadence in (10, 35, 80)
        ]
        merge = LMergeR3()
        output = merge.merge(inputs, schedule="random", seed=2)
        assert output.tdb() == stream.tdb()
